// The eager mode: collaborative query processing (Section 2.2.2,
// Algorithms 2 and 3).
//
// A query gossips through the querier's personal network together with a
// "remaining list" — the network members whose profiles the querier does
// not store. Every reached user prunes the list with the replicas she
// stores, computes her share of the query, ships the partial result
// straight to the querier, keeps a (1-α) portion of the pruned list as her
// own task, and returns the α portion to the gossip initiator. The querier
// merges the asynchronously arriving partial lists with incremental NRA at
// the end of each cycle. Each query gossip also piggybacks a lazy-mode
// profile exchange, refreshing the personal networks along the way.
//
// Under the engine's plan/commit contract: PlanCycle (parallel) selects the
// destination, prunes against the destination's frozen replicas, computes
// the partial result (the expensive per-profile scoring) and splits the
// list — all from the node's private forked stream — and packages the
// cycle's gossips as one self-contained message to the delivery layer. The
// piggybacked maintenance exchange screens its candidates through the same
// batched similarity kernel as the lazy mode (one PairInfoBatch sweep per
// screen, see profile/score_kernel.h).
// CommitMessage (sequential, delivery order) applies the
// task/traffic/query-state effects when the message arrives, merge-aware so
// a list portion another commit appended to this node's task after planning
// is never lost. EndCycle runs the wave of refreshments over this cycle's
// participants and closes the queriers' cycle snapshots.
//
// Under a lagging or lossy latency model a task's gossip can be in flight
// for several cycles, so each task gossips at most once concurrently: the
// owner marks it in flight at plan time and waits eager_retry_cycles for
// the reply; past that deadline it bumps the task's generation (stamped
// into every planned gossip) and re-issues from the current list. A
// superseded or orphaned message that still arrives is counted and dropped
// — nothing is double-applied, and lost messages cost only the retry wait
// because the consumed list entries stay with the owner until commit.
#ifndef P3Q_CORE_EAGER_PROTOCOL_H_
#define P3Q_CORE_EAGER_PROTOCOL_H_

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/lazy_protocol.h"
#include "core/p3q_node.h"
#include "core/query.h"
#include "sim/engine.h"

namespace p3q {

class P3QSystem;

/// Query-processing protocol; one instance per system, driven by the
/// eager cycle engine.
class EagerProtocol : public CycleProtocol {
 public:
  explicit EagerProtocol(P3QSystem* system);

  /// Starts a query: local processing at the querier, remaining-list
  /// construction, cycle-0 snapshot. Returns the query id. Sequential —
  /// issue queries between cycles, never during one.
  std::uint64_t IssueQuery(const QuerySpec& spec);

  // -- CycleProtocol ---------------------------------------------------------
  void BeginCycle(std::uint64_t cycle) override;
  /// Only nodes holding query tasks do eager work; everyone else is
  /// filtered out before the engine forks their streams, keeping query
  /// cycles O(engaged nodes) on large, mostly-idle populations.
  bool ActiveInCycle(UserId node) const override;
  void PlanCycle(UserId node, const PlanContext& ctx) override;
  void EndPlan(std::uint64_t cycle) override;
  bool UsesPerNodeCommit() const override { return false; }
  void CommitMessage(UserId sender, std::uint64_t send_cycle,
                     std::uint64_t cycle, DeliveryMessage& message,
                     Rng* rng) override;
  void EndCycle(std::uint64_t cycle, Rng* rng) override;

  /// Every id-keyed accessor throws std::out_of_range naming the id for an
  /// unknown (never issued, or already forgotten) query — the serving
  /// harness polls many ids, so a silent mislookup would be load-bearing.
  ActiveQuery& query(std::uint64_t id) { return *StateOrThrow(id).query; }
  const ActiveQuery& query(std::uint64_t id) const {
    return *StateOrThrow(id).query;
  }

  /// True when no remaining list for the query exists anywhere.
  bool Complete(std::uint64_t id) const {
    return StateOrThrow(id).active_tasks == 0;
  }

  /// Users the query's gossip has reached (includes the querier).
  const std::unordered_set<UserId>& Reached(std::uint64_t id) const {
    return StateOrThrow(id).reached;
  }

  std::vector<std::uint64_t> AllQueryIds() const;

  /// Releases all state of a query (long parameter sweeps). Messages of the
  /// query still in flight are counted and dropped when they arrive.
  void Forget(std::uint64_t id);

  /// Delivered gossips discarded because a timeout re-issue superseded them
  /// or their query state was already forgotten.
  std::uint64_t stale_messages_dropped() const {
    return stale_messages_dropped_;
  }

  /// Task gossips re-issued after the in-flight deadline passed (lost or
  /// hopelessly late messages).
  std::uint64_t timeout_reissues() const { return timeout_reissues_; }

  /// Partial results that reached their querier after finalization and
  /// were dropped, summed over live and forgotten queries (monotone).
  std::uint64_t late_partial_results_dropped() const;

  /// Checkpoint codec for in-flight task gossip messages.
  void EncodeMessage(const DeliveryMessage& message, CheckpointWriter* out,
                     ProfilePool* pool) const override;
  std::unique_ptr<DeliveryMessage> DecodeMessage(
      CheckpointReader* in, const ProfileTable& profiles) const override;

  /// Serializes the protocol-level query state: per-query ActiveQuery +
  /// reach/task bookkeeping, the counters, and the id/epoch allocators.
  /// (Per-node EagerTasks live with the nodes, saved by P3QSystem.)
  void SaveState(CheckpointWriter* out) const;

  /// Restores state written by SaveState, replacing current contents.
  void LoadState(CheckpointReader* in);

 private:
  struct QueryState {
    std::unique_ptr<ActiveQuery> query;
    std::unordered_set<UserId> reached;
    int active_tasks = 0;     ///< nodes currently holding a non-empty list
    bool finalized = false;   ///< completion snapshot already recorded
  };

  /// One planned gossip of a task (Algorithm 3 both roles, decided against
  /// frozen state).
  struct PlannedGossip {
    std::uint64_t query_id = 0;
    UserId dest = kInvalidUser;
    /// Task (incarnation, generation) at plan time; any mismatch at
    /// delivery means the task was superseded — by a timeout re-issue, or
    /// by dying and being recreated from another sender's kept portion —
    /// and the gossip must be discarded.
    std::uint64_t epoch = 0;
    std::uint32_t generation = 0;
    /// Entries of the task's remaining list consumed by this gossip; at
    /// commit they are replaced by `returned` while entries appended to the
    /// task after planning are preserved.
    std::size_t consumed = 0;
    std::size_t fwd_bytes = 0;
    bool has_partial = false;
    PartialResultMessage partial;
    std::vector<UserId> returned;  ///< α portion, back to this node's task
    std::vector<UserId> kept;      ///< 1-α portion, becomes the dest's task
    ProfileExchangePlan exchange;  ///< piggybacked maintenance
  };

  /// One cycle's gossips of one node, travelling through the delivery
  /// layer as a self-contained message.
  struct TaskGossipMessage : DeliveryMessage {
    std::vector<PlannedGossip> gossips;  ///< one per task, query-id order
  };

  /// Algorithm 3 lines 4-9: remaining-list member that is also a
  /// personal-network neighbour with maximum timestamp, else a random
  /// remaining-list member; skips offline candidates (bounded retries).
  UserId SelectDestination(const P3QNode* initiator, const EagerTask& task,
                           Rng* rng);

  /// Plans one gossip of `task` from `node` (Algorithm 3 both roles);
  /// returns true when a gossip was appended to `message`.
  bool PlanGossip(const P3QNode* node, const EagerTask& task,
                  const PlanContext& ctx, TaskGossipMessage* message);

  /// Applies one delivered gossip at commit time; `send_cycle`/`cycle` are
  /// the gossip's wire endpoints (traced as committed or stale).
  void CommitGossip(P3QNode* node, std::uint64_t send_cycle,
                    std::uint64_t cycle, PlannedGossip* gossip);

  /// Looks up a query's state; throws std::out_of_range naming the id when
  /// the query was never issued or has been forgotten.
  QueryState& StateOrThrow(std::uint64_t id);
  const QueryState& StateOrThrow(std::uint64_t id) const;

  /// Sums Score_{u,Q}(i) over the given profiles into a ranked list.
  static PartialResultMessage BuildPartialResult(
      const std::vector<ProfilePtr>& profiles,
      const std::vector<UserId>& owners, const std::vector<TagId>& tags);

  P3QSystem* system_;
  std::unordered_map<std::uint64_t, QueryState> state_;
  /// Users who took part in query gossip during the current cycle; each
  /// runs one maintenance exchange at the end of the cycle.
  std::unordered_set<UserId> participants_;
  /// Timeout re-issues decided on plan threads, folded at the barrier (the
  /// same per-shard mailbox discipline as Network::ShardTraffic).
  std::array<std::uint64_t, kEngineShards> shard_reissues_{};
  std::uint64_t timeout_reissues_ = 0;
  std::uint64_t stale_messages_dropped_ = 0;
  /// Late-partial-result drops of already-forgotten queries (folded in by
  /// Forget so the system-wide total stays monotone).
  std::uint64_t forgotten_late_results_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_epoch_ = 1;  ///< unique EagerTask incarnation ids
};

}  // namespace p3q

#endif  // P3Q_CORE_EAGER_PROTOCOL_H_
