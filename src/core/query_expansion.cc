#include "core/query_expansion.h"

#include <algorithm>
#include <unordered_map>

namespace p3q {

std::vector<ExpansionTag> RankExpansionTags(
    const std::vector<ProfilePtr>& profiles,
    const std::vector<TagId>& sorted_query_tags) {
  std::unordered_map<TagId, std::uint64_t> weights;
  for (const ProfilePtr& profile : profiles) {
    const auto& actions = profile->actions();
    std::size_t i = 0;
    while (i < actions.size()) {
      // One item run: count query-tag hits, remember the other tags.
      const ItemId item = ActionItem(actions[i]);
      std::size_t hits = 0;
      std::vector<TagId> others;
      while (i < actions.size() && ActionItem(actions[i]) == item) {
        const TagId tag = ActionTag(actions[i]);
        if (std::binary_search(sorted_query_tags.begin(),
                               sorted_query_tags.end(), tag)) {
          ++hits;
        } else {
          others.push_back(tag);
        }
        ++i;
      }
      if (hits == 0) continue;
      for (TagId tag : others) weights[tag] += hits;
    }
  }
  std::vector<ExpansionTag> ranked;
  ranked.reserve(weights.size());
  for (const auto& [tag, weight] : weights) {
    ranked.push_back(ExpansionTag{tag, weight});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const ExpansionTag& a, const ExpansionTag& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.tag < b.tag;
            });
  return ranked;
}

std::vector<TagId> ExpandQueryTags(const std::vector<ProfilePtr>& profiles,
                                   const std::vector<TagId>& sorted_query_tags,
                                   int max_extra) {
  std::vector<TagId> expanded = sorted_query_tags;
  const std::vector<ExpansionTag> ranked =
      RankExpansionTags(profiles, sorted_query_tags);
  for (int i = 0; i < max_extra && i < static_cast<int>(ranked.size()); ++i) {
    expanded.push_back(ranked[static_cast<std::size_t>(i)].tag);
  }
  std::sort(expanded.begin(), expanded.end());
  expanded.erase(std::unique(expanded.begin(), expanded.end()),
                 expanded.end());
  return expanded;
}

}  // namespace p3q
