// One P3Q user: her profile, personal network, random view and query tasks.
#ifndef P3Q_CORE_P3Q_NODE_H_
#define P3Q_CORE_P3Q_NODE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "core/personal_network.h"
#include "gossip/peer_sampling.h"
#include "profile/profile.h"

namespace p3q {

/// The share of a query a node is responsible for: the query's tags and the
/// remaining list portion assigned to this node (Algorithm 3).
struct EagerTask {
  std::uint64_t query_id = 0;
  UserId querier = kInvalidUser;
  std::vector<TagId> tags;          // sorted ascending
  std::vector<UserId> remaining;    // profiles still to locate

  // Delivery-layer bookkeeping (owner-private: written only by the owner's
  // plan pass and by sequential commits, so it is race-free under the
  // engine's one-shard-one-thread contract). While a gossip of this task is
  // in flight the task does not gossip again; once `in_flight_until`
  // passes, the owner assumes the message lost (or hopelessly late), bumps
  // `generation` to supersede it, and re-issues from the current list.
  // `epoch` is unique per task *incarnation* (assigned by the protocol at
  // creation): a task erased and later recreated on the same node gets a
  // fresh epoch, so a gossip of the dead incarnation can never match it.
  std::uint64_t epoch = 0;
  std::uint32_t generation = 0;
  bool in_flight = false;
  std::uint64_t in_flight_until = 0;  ///< first cycle a re-issue may happen
};

/// Per-user protocol state.
class P3QNode {
 public:
  /// self: user id; profile: current own profile snapshot; storage_capacity:
  /// this user's c (from the storage distribution); rng: private stream.
  P3QNode(UserId self, ProfilePtr profile, const P3QConfig& config,
          int storage_capacity, Rng rng);

  UserId id() const { return self_; }
  int storage_capacity() const { return storage_capacity_; }

  const ProfilePtr& profile() const { return profile_; }
  /// Installs a new own-profile snapshot (the user tagged new items).
  void SetOwnProfile(ProfilePtr profile) { profile_ = std::move(profile); }

  /// Fresh descriptor of this node's own profile.
  DigestInfo SelfDigest() const { return DigestInfo{self_, profile_}; }

  PersonalNetwork& network() { return network_; }
  const PersonalNetwork& network() const { return network_; }

  RandomView& random_view() { return random_view_; }
  const RandomView& random_view() const { return random_view_; }

  Rng& rng() { return rng_; }
  const Rng& rng() const { return rng_; }

  /// The profile of `user` if this node can serve it: her own profile when
  /// user == self, else a stored replica. Null otherwise. This is what the
  /// eager mode's GoodProfiles check uses (Section 2.3: "either her own
  /// profile or those stored in her personal network").
  ProfilePtr FindUsableProfile(UserId user) const;

  /// True exactly once per (user, version): memoizes random-view probing so
  /// a digest that already triggered a probe is not re-probed every cycle
  /// (behaviourally equivalent to the paper's per-cycle re-scoring, since a
  /// re-probe of an unchanged digest cannot change the outcome).
  bool ShouldProbe(UserId user, std::uint32_t version);

  /// Active query shares keyed by query id.
  std::unordered_map<std::uint64_t, EagerTask>& tasks() { return tasks_; }
  const std::unordered_map<std::uint64_t, EagerTask>& tasks() const {
    return tasks_;
  }

  /// Probe memo of ShouldProbe (checkpoint access).
  std::unordered_map<UserId, std::uint32_t>& probed_versions() {
    return probed_versions_;
  }
  const std::unordered_map<UserId, std::uint32_t>& probed_versions() const {
    return probed_versions_;
  }

 private:
  UserId self_;
  int storage_capacity_;
  ProfilePtr profile_;
  PersonalNetwork network_;
  RandomView random_view_;
  Rng rng_;
  std::unordered_map<UserId, std::uint32_t> probed_versions_;
  std::unordered_map<std::uint64_t, EagerTask> tasks_;
};

}  // namespace p3q

#endif  // P3Q_CORE_P3Q_NODE_H_
