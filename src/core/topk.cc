#include "core/topk.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "sim/checkpoint.h"

namespace p3q {

IncrementalNra::IncrementalNra(int k) : k_(k < 1 ? 1 : k) {}

void IncrementalNra::AddList(
    std::vector<std::pair<ItemId, std::uint32_t>> entries) {
#ifndef NDEBUG
  // Precondition: scores descending, items unique within a list.
  for (std::size_t i = 1; i < entries.size(); ++i) {
    assert(entries[i - 1].second >= entries[i].second);
  }
#endif
  List list;
  list.entries = std::move(entries);
  lists_.push_back(std::move(list));
}

void IncrementalNra::ConsumeEntry(std::uint32_t idx, std::size_t pos) {
  List& list = lists_[idx];
  const auto& [item, score] = list.entries[pos];
  list.last_seen = score;
  list.next_pos = pos + 1;
  Candidate& cand = candidates_[item];
  cand.worst += score;
  cand.seen_lists.push_back(idx);
  ++total_scanned_;
}

std::uint64_t IncrementalNra::ActiveTail() const {
  std::uint64_t tail = 0;
  for (const List& list : lists_) {
    if (list.Exhausted()) continue;
    if (list.last_seen == kUnknown) return kUnknown;
    tail += list.last_seen;
  }
  return tail;
}

std::uint64_t IncrementalNra::BestCase(const Candidate& c,
                                       std::uint64_t tail) const {
  // best = worst + (bound of every active list the item was NOT seen in)
  //      = worst + tail - sum(last_seen of active lists it WAS seen in).
  std::uint64_t best = c.worst + tail;
  for (std::uint32_t idx : c.seen_lists) {
    const List& list = lists_[idx];
    if (!list.Exhausted()) best -= list.last_seen;
  }
  return best;
}

bool IncrementalNra::StopConditionHolds() const {
  const std::uint64_t tail = ActiveTail();
  if (tail == kUnknown) return false;  // an unscanned list bounds nothing
  if (candidates_.empty()) return tail == 0;
  if (candidates_.size() <= static_cast<std::size_t>(k_)) {
    // Fewer candidates than k: final only when no list can produce more.
    return tail == 0;
  }
  struct Entry {
    ItemId item;
    std::uint64_t worst;
    std::uint64_t best;
  };
  std::vector<Entry> all;
  all.reserve(candidates_.size());
  for (const auto& [item, cand] : candidates_) {
    all.push_back(Entry{item, cand.worst, BestCase(cand, tail)});
  }
  auto before = [](const Entry& a, const Entry& b) {
    if (a.worst != b.worst) return a.worst > b.worst;
    if (a.best != b.best) return a.best > b.best;
    return a.item < b.item;
  };
  std::nth_element(all.begin(), all.begin() + (k_ - 1), all.end(), before);
  const std::uint64_t kth_worst = all[static_cast<std::size_t>(k_) - 1].worst;
  std::uint64_t max_other_best = 0;
  for (std::size_t i = static_cast<std::size_t>(k_); i < all.size(); ++i) {
    max_other_best = std::max(max_other_best, all[i].best);
  }
  // `tail` also upper-bounds any item never seen in any list (Fagin's
  // threshold); the paper's heap-only condition implicitly relies on it.
  max_other_best = std::max(max_other_best, tail);
  return kth_worst >= max_other_best;
}

bool IncrementalNra::Converged() const { return StopConditionHolds(); }

std::size_t IncrementalNra::Process() {
  const std::size_t before = total_scanned_;
  if (StopConditionHolds()) return 0;

  // Cohorts of non-exhausted lists grouped by their next position. The
  // paper's global cursor rule — new lists scan from rank 1, parked lists
  // rejoin when the cursor reaches where they stopped — is exactly
  // "always advance the cohort with the smallest next position".
  std::map<std::size_t, std::vector<std::uint32_t>> pending;
  for (std::uint32_t idx = 0; idx < lists_.size(); ++idx) {
    if (!lists_[idx].Exhausted()) pending[lists_[idx].next_pos].push_back(idx);
  }
  std::size_t sweeps = 0;
  std::size_t next_check = 1;
  while (!pending.empty()) {
    auto it = pending.begin();
    const std::size_t pos = it->first;
    std::vector<std::uint32_t> cohort = std::move(it->second);
    pending.erase(it);
    for (std::uint32_t idx : cohort) {
      ConsumeEntry(idx, pos);
      if (!lists_[idx].Exhausted()) pending[pos + 1].push_back(idx);
    }
    ++sweeps;
    // Algorithm 4 re-evaluates the stop condition after every position; we
    // check at geometrically spaced sweeps (1, 2, 4, ...), which bounds the
    // extra scanning by 2x while keeping the check cost off the hot path.
    if (sweeps >= next_check) {
      next_check *= 2;
      if (StopConditionHolds()) break;
    }
  }
  return total_scanned_ - before;
}

std::size_t IncrementalNra::DrainAll() {
  const std::size_t before = total_scanned_;
  for (std::uint32_t idx = 0; idx < lists_.size(); ++idx) {
    while (!lists_[idx].Exhausted()) {
      ConsumeEntry(idx, lists_[idx].next_pos);
    }
  }
  return total_scanned_ - before;
}

void IncrementalNra::SaveState(CheckpointWriter* out) const {
  out->U32(static_cast<std::uint32_t>(k_));
  out->U64(total_scanned_);
  out->U64(lists_.size());
  for (const List& list : lists_) {
    out->U64(list.entries.size());
    for (const auto& [item, score] : list.entries) {
      out->U32(item);
      out->U32(score);
    }
    out->U64(list.next_pos);
    out->U64(list.last_seen);
  }
  // Candidates in ascending item order so the encoding is deterministic
  // regardless of hash-map iteration order.
  std::vector<ItemId> items;
  items.reserve(candidates_.size());
  for (const auto& [item, cand] : candidates_) items.push_back(item);
  std::sort(items.begin(), items.end());
  out->U64(items.size());
  for (ItemId item : items) {
    const Candidate& cand = candidates_.at(item);
    out->U32(item);
    out->U64(cand.worst);
    out->U64(cand.seen_lists.size());
    for (std::uint32_t idx : cand.seen_lists) out->U32(idx);
  }
}

IncrementalNra IncrementalNra::LoadState(CheckpointReader* in) {
  IncrementalNra nra(static_cast<int>(in->U32()));
  nra.total_scanned_ = in->U64();
  const std::uint64_t num_lists = in->Count(24);
  nra.lists_.reserve(static_cast<std::size_t>(num_lists));
  for (std::uint64_t i = 0; i < num_lists; ++i) {
    List list;
    const std::uint64_t num_entries = in->Count(8);
    list.entries.reserve(static_cast<std::size_t>(num_entries));
    for (std::uint64_t e = 0; e < num_entries; ++e) {
      const ItemId item = in->U32();
      const std::uint32_t score = in->U32();
      list.entries.emplace_back(item, score);
    }
    list.next_pos = static_cast<std::size_t>(in->U64());
    list.last_seen = in->U64();
    if (list.next_pos > list.entries.size()) {
      throw CheckpointError(
          "corrupt checkpoint: NRA list cursor past the list's end");
    }
    nra.lists_.push_back(std::move(list));
  }
  const std::uint64_t num_candidates = in->Count(20);
  for (std::uint64_t c = 0; c < num_candidates; ++c) {
    const ItemId item = in->U32();
    Candidate cand;
    cand.worst = in->U64();
    const std::uint64_t num_seen = in->Count(4);
    cand.seen_lists.reserve(static_cast<std::size_t>(num_seen));
    for (std::uint64_t s = 0; s < num_seen; ++s) {
      const std::uint32_t idx = in->U32();
      if (idx >= nra.lists_.size()) {
        throw CheckpointError(
            "corrupt checkpoint: NRA candidate references an unknown list");
      }
      cand.seen_lists.push_back(idx);
    }
    nra.candidates_.emplace(item, std::move(cand));
  }
  return nra;
}

std::vector<RankedItem> IncrementalNra::TopK() const {
  // Display tail: bound from the lists scanned so far (unscanned lists
  // cannot be accounted; Converged() is what certifies finality).
  std::uint64_t tail = 0;
  for (const List& list : lists_) {
    if (!list.Exhausted() && list.last_seen != kUnknown) tail += list.last_seen;
  }
  std::vector<RankedItem> ranked;
  ranked.reserve(candidates_.size());
  for (const auto& [item, cand] : candidates_) {
    ranked.push_back(RankedItem{item, cand.worst, BestCase(cand, tail)});
  }
  auto before = [](const RankedItem& a, const RankedItem& b) {
    if (a.worst != b.worst) return a.worst > b.worst;
    if (a.best != b.best) return a.best > b.best;
    return a.item < b.item;
  };
  std::sort(ranked.begin(), ranked.end(), before);
  if (ranked.size() > static_cast<std::size_t>(k_)) {
    ranked.resize(static_cast<std::size_t>(k_));
  }
  return ranked;
}

}  // namespace p3q
