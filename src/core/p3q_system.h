// P3QSystem — the public entry point: a whole simulated P3Q deployment.
//
// Owns the population (profile store + one P3QNode per user), the simulated
// network with its traffic accounting, the cycle engine, and the protocol
// instances. Typical use:
//
//   auto trace = GenerateSyntheticTrace(SyntheticConfig::DeliciousLike(1000), 1);
//   P3QConfig config;
//   config.network_size = 100;
//   P3QSystem system(trace.dataset(), config, /*per_user_storage=*/{}, seed);
//   system.BootstrapRandomViews();
//   system.RunLazyCycles(200);                        // build personal networks
//   auto qid = system.IssueQuery(GenerateQueryForUser(trace.dataset(), 42, &rng));
//   system.RunEagerCycles(10);                        // gossip the query
//   const ActiveQuery& q = system.query(qid);         // per-cycle top-k history
#ifndef P3Q_CORE_P3Q_SYSTEM_H_
#define P3Q_CORE_P3Q_SYSTEM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/config.h"
#include "core/p3q_node.h"
#include "core/query.h"
#include "dataset/dataset.h"
#include "dataset/update_batch.h"
#include "profile/profile_store.h"
#include "sim/delivery.h"
#include "sim/engine.h"
#include "sim/network.h"

namespace p3q {

class LazyProtocol;
class EagerProtocol;
class Tracer;         // obs/trace.h
class PhaseProfiler;  // obs/profiler.h
class CheckpointWriter;  // sim/checkpoint.h
class CheckpointReader;

/// Memory rollup of one deployment (profile storage + scoring caches),
/// surfaced in the runner's --timing report. All figures are current
/// values except the peaks noted in ProfileStoreMemoryStats.
struct SystemMemoryStats {
  ProfileStoreMemoryStats store;
  /// Memoized pair similarities currently cached.
  std::size_t pair_cache_entries = 0;
  /// Entries discarded by the cache's capacity bound so far.
  std::uint64_t pair_cache_evictions = 0;
};

/// A complete simulated P3Q deployment.
class P3QSystem {
 public:
  /// dataset: the tagging trace; config: protocol parameters;
  /// per_user_storage: every user's c (empty => config.stored_profiles for
  /// all); seed: master seed for all randomness.
  P3QSystem(const Dataset& dataset, const P3QConfig& config,
            std::vector<int> per_user_storage, std::uint64_t seed);

  /// Takes ownership of an already-built profile store — the streaming
  /// setup path: trace generation feeds profiles straight into the store
  /// without materializing a Dataset. Behaviour is identical to building
  /// the store from the equivalent dataset.
  P3QSystem(ProfileStore&& store, const P3QConfig& config,
            std::vector<int> per_user_storage, std::uint64_t seed);

  ~P3QSystem();

  P3QSystem(const P3QSystem&) = delete;
  P3QSystem& operator=(const P3QSystem&) = delete;

  std::size_t NumUsers() const { return nodes_.size(); }
  const P3QConfig& config() const { return config_; }
  Network& network() { return network_; }
  const Network& network() const { return network_; }
  ProfileStore& profile_store() { return store_; }
  const ProfileStore& profile_store() const { return store_; }
  P3QNode& node(UserId user) { return *nodes_[user]; }
  const P3QNode& node(UserId user) const { return *nodes_[user]; }
  Rng& rng() { return rng_; }
  Metrics& metrics() { return network_.metrics(); }

  /// Worker threads for the engines' parallel plan phases. Results are
  /// byte-identical for every value (see sim/engine.h); the initial value
  /// comes from the P3Q_THREADS environment variable (default 1).
  void SetThreads(int threads);
  int threads() const { return engine_.threads(); }

  /// Installs the latency model governing message delivery on both engines
  /// (sim/delivery.h). The default ZeroLatency commits every planned effect
  /// at its own cycle's barrier, byte-identical to the synchronous engine;
  /// non-zero models put planned effects in flight for whole cycles.
  /// Results stay byte-identical across thread counts for every model.
  /// Throws std::invalid_argument when the spec fails Validate().
  void SetLatency(const LatencySpec& spec);
  const LatencySpec& latency() const { return latency_spec_; }

  /// Attaches a deterministic event tracer (obs/trace.h) to both engines,
  /// their delivery queues, and the protocols. Traces are observation-only:
  /// they never perturb a run's results. Null detaches; the tracer must
  /// outlive the system's remaining cycles.
  void SetTracer(Tracer* tracer);
  Tracer* tracer() const { return tracer_; }

  /// Attaches a wall-clock phase profiler (obs/profiler.h): the lazy engine
  /// accumulates under "lazy", the eager engine under "eager". Null
  /// detaches. Like tracing, profiling is observation-only.
  void SetProfiler(PhaseProfiler* profiler);

  /// Merged delivery counters of both engines; stale_dropped additionally
  /// folds in the eager protocol's superseded-gossip drops and the
  /// queriers' late-partial-result drops.
  DeliveryStats DeliveryStatsTotal() const;

  /// Messages currently in flight across both engines.
  std::size_t MessagesInFlight() const;

  /// Memory footprint rollup: the profile store's arena/pool/pending
  /// counters plus the pair-similarity cache's population and evictions.
  SystemMemoryStats MemoryStats() const;

  // -- Initialization ------------------------------------------------------

  /// Fills every node's random view with r uniformly random peers (their
  /// current digests); the paper's bootstrap via peer sampling.
  void BootstrapRandomViews();

  /// Installs converged personal networks directly: per user, her ideal
  /// neighbours as (user, score) sorted by descending score; the top-c get
  /// fresh profile replicas. Used by the query-processing experiments,
  /// which start from built networks (the paper converges the lazy mode
  /// first; see baseline/ideal_network.h for computing the lists).
  void SeedNetworks(
      const std::vector<std::vector<std::pair<UserId, std::uint64_t>>>& ideal);

  /// Seeds each user's personal network from an *explicit* social graph
  /// (friends[u] = u's declared friends). The paper's Section 4: "equipping
  /// each P3Q user with a pre-defined explicit network (e.g. Facebook) as
  /// input would be straightforward: only the eager mode would suffice".
  /// Friends are scored with the configured similarity; zero-similarity
  /// friends still join with a minimal score of 1 (a declared friend is a
  /// neighbour regardless of overlap), and the top-c get replicas.
  void SeedExplicitNetworks(const std::vector<std::vector<UserId>>& friends);

  // -- Lazy mode -----------------------------------------------------------

  /// Runs n lazy cycles over every online node.
  void RunLazyCycles(std::uint64_t n);

  /// Registers an observer invoked after every lazy cycle.
  void AddLazyObserver(std::function<void(std::uint64_t)> observer);

  // -- Eager mode (queries) -------------------------------------------------

  /// Issues a query: computes the querier's local partial result, builds her
  /// remaining list, and returns the query id.
  std::uint64_t IssueQuery(const QuerySpec& spec);

  /// Runs n eager cycles; every node holding a non-empty remaining list
  /// gossips once per cycle per query, and queriers refresh their top-k at
  /// the end of each cycle.
  void RunEagerCycles(std::uint64_t n);

  /// Querier-side state of a query.
  ActiveQuery& query(std::uint64_t query_id);
  const ActiveQuery& query(std::uint64_t query_id) const;

  /// True when no remaining list for the query exists anywhere.
  bool QueryComplete(std::uint64_t query_id) const;

  /// Users reached by the query's gossip so far (includes the querier).
  const std::unordered_set<UserId>& QueryReached(std::uint64_t query_id) const;

  /// Ids of all issued queries.
  std::vector<std::uint64_t> AllQueryIds() const;

  /// Drops finished query state (frees memory in long sweeps).
  void ForgetQuery(std::uint64_t query_id);

  // -- Dynamism -------------------------------------------------------------

  /// Publishes an update batch: store versions bump and each changed user's
  /// node learns its own new profile immediately.
  void ApplyUpdateBatch(const UpdateBatch& batch);

  /// Takes a random fraction of online users offline; returns them.
  std::vector<UserId> FailRandomFraction(double fraction);

  /// Takes one user offline (duty-cycle churn goes through here so every
  /// departure path shares any future departure bookkeeping). No-op for
  /// users already offline.
  void FailUser(UserId user) { network_.SetOnline(user, false); }

  /// Brings a departed user back: marks her online, re-syncs her own profile
  /// to the store's current snapshot (she may have tagged while away) and
  /// re-bootstraps her random view with r uniformly random *online* peers —
  /// the peer-sampling service a rejoining node would contact. Her personal
  /// network (and its stored replicas) survives the absence, as replicas do
  /// in the paper's churn model. No-op for users already online.
  void RejoinUser(UserId user);

  /// Brings a uniformly random `fraction` (clamped to [0, 1]) of currently
  /// offline users back via RejoinUser; returns them.
  std::vector<UserId> RejoinRandomFraction(double fraction);

  // -- Internals shared by the protocols ------------------------------------

  /// Similarity of two profile snapshots, memoized on (owner, version)
  /// pairs; the result is oriented to the (a, b) argument order. The score
  /// field is always the raw common-action count. Thread-safe: the cache is
  /// sharded by key hash with one lock per shard, so the engines' parallel
  /// plan phases share it; memoizing a pure function keeps the results
  /// deterministic regardless of which thread populates an entry first.
  /// Misses are computed by the block-bitmap kernel (profile/score_kernel.h)
  /// — exact, byte-identical to the scalar reference merge.
  PairSimilarity PairInfo(const Profile& a, const Profile& b);

  /// Batched PairInfo: one result per candidate, each oriented to
  /// (a, candidates[i]). Cache hits are collected first (one short stripe
  /// lock per lookup); all misses are then computed in ONE batched kernel
  /// sweep outside the stripe locks — a's index stays cache-hot across the
  /// whole candidate set — and inserted afterwards. This is what the plan
  /// phases call once per node per cycle instead of per-pair PairInfo.
  std::vector<PairSimilarity> PairInfoBatch(
      const Profile& a, const std::vector<const Profile*>& candidates);

  /// The configured similarity metric applied to the pair (what the
  /// personal networks rank by).
  std::uint64_t ScoreBetween(const Profile& a, const Profile& b) {
    return SimilarityScore(config_.similarity, PairInfo(a, b).score,
                           a.Length(), b.Length());
  }

  EagerProtocol& eager() { return *eager_; }

  // -- Checkpointing ---------------------------------------------------------

  /// Serializes the complete mutable system state at a cycle barrier into
  /// `out`: the interned profile pool, the store's current snapshots,
  /// liveness flags, traffic metrics, the system rng, every node (own
  /// profile, rng, personal network, random view, probe memo, eager tasks),
  /// both engines (cycle counters + in-flight messages) and the eager
  /// protocol's query state. Configuration, dataset and the pair-similarity
  /// cache are NOT serialized — the loading side must be constructed from
  /// the same dataset/config/seed (the engine seeds are verified on load).
  void SaveCheckpoint(CheckpointWriter* out) const;

  /// Restores state written by SaveCheckpoint. Throws CheckpointError on
  /// malformed input or when the snapshot does not match this system (user
  /// count, engine seeds). On failure the system may be partially restored
  /// — construct a fresh system before retrying.
  void LoadCheckpoint(CheckpointReader* in);

 private:
  struct PairKey {
    std::uint64_t users;     // lo << 32 | hi
    std::uint64_t versions;  // ver_lo << 32 | ver_hi
    bool operator==(const PairKey& o) const {
      return users == o.users && versions == o.versions;
    }
  };
  struct PairKeyHash {
    std::size_t operator()(const PairKey& k) const {
      std::uint64_t h = k.users * 0x9e3779b97f4a7c15ULL;
      h ^= (k.versions + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
      return static_cast<std::size_t>(h);
    }
  };

  /// Canonical (owner, version) cache key of a pair; `swapped` reports
  /// whether the (a, b) argument order was flipped to low/high owner order.
  static PairKey MakePairKey(const Profile& a, const Profile& b,
                             bool* swapped);

  /// Lock striping for the pair-similarity cache: plan-phase threads mostly
  /// hit different stripes, and a stripe's lock is held only for the map
  /// lookup/insert, never while the similarity kernel runs.
  static constexpr std::size_t kPairCacheStripes = 64;
  /// Total cache capacity bound; a stripe that outgrows its share resets
  /// (a reset only costs recomputation — the entries are memoized pure
  /// values). Evictions are counted for MemoryStats.
  static constexpr std::size_t kPairCacheCapacity = 20'000'000;
  struct PairCacheStripe {
    std::mutex mu;
    std::unordered_map<PairKey, PairSimilarity, PairKeyHash> map;
  };

  /// Clears a full stripe (under its lock), counting the eviction.
  void MaybeEvictStripe(PairCacheStripe* stripe);

  P3QConfig config_;
  Rng rng_;
  ProfileStore store_;
  Network network_;
  Engine engine_;        ///< drives the lazy protocol's cycles
  Engine eager_engine_;  ///< drives the eager protocol's cycles
  std::vector<std::unique_ptr<P3QNode>> nodes_;
  std::unique_ptr<LazyProtocol> lazy_;
  std::unique_ptr<EagerProtocol> eager_;
  LatencySpec latency_spec_;  ///< default: ZeroLatency
  Tracer* tracer_ = nullptr;
  std::array<PairCacheStripe, kPairCacheStripes> pair_cache_;
  std::atomic<std::uint64_t> pair_cache_evictions_{0};
};

}  // namespace p3q

#endif  // P3Q_CORE_P3Q_SYSTEM_H_
