#include "core/eager_protocol.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/lazy_protocol.h"
#include "core/p3q_system.h"

namespace p3q {
namespace {

/// Wire size of a forwarded query gossip: the remaining list, the query's
/// tags (16 B strings on the wire) and the querier id.
std::size_t ForwardBytes(const EagerTask& task) {
  return task.remaining.size() * kBytesPerUserId + task.tags.size() * 16 +
         kBytesPerUserId;
}

}  // namespace

PartialResultMessage EagerProtocol::BuildPartialResult(
    const std::vector<ProfilePtr>& profiles, const std::vector<UserId>& owners,
    const std::vector<TagId>& tags) {
  std::unordered_map<ItemId, std::uint32_t> scores;
  for (const ProfilePtr& profile : profiles) {
    for (const auto& [item, score] : profile->ScoreQuery(tags)) {
      scores[item] += score;
    }
  }
  PartialResultMessage message;
  message.entries.assign(scores.begin(), scores.end());
  std::sort(message.entries.begin(), message.entries.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  message.used_profiles = owners;
  return message;
}

std::uint64_t EagerProtocol::IssueQuery(const QuerySpec& spec) {
  const std::uint64_t id = next_id_++;
  P3QNode& querier = system_->node(spec.querier);

  QueryState state;
  state.query = std::make_unique<ActiveQuery>(
      id, spec, system_->config().top_k, querier.network().size());
  state.reached.insert(spec.querier);

  // Algorithm 2 line 3: process Q with the locally stored profiles first.
  std::vector<ProfilePtr> stored = querier.network().StoredProfiles();
  if (!stored.empty()) {
    std::vector<UserId> owners;
    owners.reserve(stored.size());
    for (const ProfilePtr& p : stored) owners.push_back(p->owner());
    state.query->DeliverPartialResult(
        BuildPartialResult(stored, owners, spec.tags));
  }

  // Remaining list: network members whose profiles are not stored.
  std::vector<UserId> remaining = querier.network().MembersWithoutProfile();
  const bool complete = remaining.empty();
  if (!complete) {
    EagerTask task;
    task.query_id = id;
    task.querier = spec.querier;
    task.tags = spec.tags;
    task.remaining = std::move(remaining);
    querier.tasks().emplace(id, std::move(task));
    engaged_.insert(spec.querier);
    state.active_tasks = 1;
  }
  state.query->EndOfCycle(complete);  // cycle-0 snapshot (local result)
  state.finalized = complete;
  state_.emplace(id, std::move(state));
  return id;
}

UserId EagerProtocol::SelectDestination(P3QNode* initiator,
                                        const EagerTask& task) {
  const Network& net = system_->network();
  // Remaining-list members that are personal-network neighbours, by
  // descending timestamp (Algorithm 3 line 5), then the rest in random
  // order. The first online candidate wins; the number of unresponsive
  // contacts tried is bounded per cycle.
  struct Scored {
    UserId user;
    std::uint32_t timestamp;
  };
  std::vector<Scored> neighbours;
  std::vector<UserId> others;
  for (UserId w : task.remaining) {
    const NetworkEntry* e = initiator->network().Find(w);
    if (e != nullptr) {
      neighbours.push_back(Scored{w, e->timestamp});
    } else {
      others.push_back(w);
    }
  }
  std::sort(neighbours.begin(), neighbours.end(),
            [](const Scored& a, const Scored& b) {
              if (a.timestamp != b.timestamp) return a.timestamp > b.timestamp;
              return a.user < b.user;
            });
  initiator->rng().Shuffle(&others);

  int attempts_left = system_->config().offline_retry + 1;
  for (const Scored& s : neighbours) {
    if (net.IsOnline(s.user)) return s.user;
    if (--attempts_left <= 0) return kInvalidUser;
  }
  for (UserId w : others) {
    if (net.IsOnline(w)) return w;
    if (--attempts_left <= 0) return kInvalidUser;
  }
  return kInvalidUser;
}

void EagerProtocol::GossipOnce(P3QNode* initiator, EagerTask* task) {
  QueryState& state = state_.at(task->query_id);
  Network& net = system_->network();

  const UserId dest_id = SelectDestination(initiator, *task);
  if (dest_id == kInvalidUser) return;  // every candidate offline: stall
  P3QNode* dest = &system_->node(dest_id);
  participants_.insert(initiator->id());
  participants_.insert(dest_id);

  // Forward Q and the remaining list.
  const std::size_t fwd = ForwardBytes(*task);
  net.RecordMessage(MessageType::kEagerQueryForward, fwd);
  state.query->traffic().forwarded_list_bytes += fwd;
  state.query->traffic().forward_messages += 1;
  state.reached.insert(dest_id);
  engaged_.insert(dest_id);

  // Destination prunes the list with the profiles she can serve
  // (Algorithm 3 line 18) and processes her share of the query.
  std::vector<UserId> found_owners;
  std::vector<ProfilePtr> found_profiles;
  std::vector<UserId> rest;
  for (UserId w : task->remaining) {
    ProfilePtr p = dest->FindUsableProfile(w);
    if (p != nullptr) {
      found_owners.push_back(w);
      found_profiles.push_back(std::move(p));
    } else {
      rest.push_back(w);
    }
  }
  if (!found_owners.empty()) {
    PartialResultMessage message =
        BuildPartialResult(found_profiles, found_owners, task->tags);
    const std::size_t bytes = message.WireBytes();
    net.RecordMessage(MessageType::kPartialResult, bytes);
    state.query->traffic().partial_result_bytes += bytes;
    state.query->traffic().partial_result_messages += 1;
    state.query->DeliverPartialResult(std::move(message));
  }

  // Split the pruned list: α back to the initiator, 1-α kept by the
  // destination as her own task (Algorithm 3 lines 19-21).
  dest->rng().Shuffle(&rest);
  const std::size_t n_returned = static_cast<std::size_t>(
      std::llround(system_->config().alpha * static_cast<double>(rest.size())));
  std::vector<UserId> returned(rest.begin(),
                               rest.begin() + static_cast<std::ptrdiff_t>(
                                                  n_returned));
  std::vector<UserId> kept(rest.begin() + static_cast<std::ptrdiff_t>(n_returned),
                           rest.end());
  if (!kept.empty()) {
    auto [it, created] = dest->tasks().try_emplace(task->query_id);
    if (created) {
      it->second.query_id = task->query_id;
      it->second.querier = task->querier;
      it->second.tags = task->tags;
      ++state.active_tasks;
    }
    it->second.remaining.insert(it->second.remaining.end(), kept.begin(),
                                kept.end());
  }
  const std::size_t ret_bytes = returned.size() * kBytesPerUserId + kBytesPerUserId;
  net.RecordMessage(MessageType::kEagerQueryReturn, ret_bytes);
  state.query->traffic().returned_list_bytes += ret_bytes;
  state.query->traffic().return_messages += 1;
  task->remaining = std::move(returned);

  // Timestamps and the piggybacked lazy-style maintenance (Algorithm 3
  // lines 6, 12, 24).
  initiator->network().ResetTimestamp(dest_id);
  dest->network().ResetTimestamp(initiator->id());
  LazyProtocol::RunProfileExchange(system_, initiator->id(), dest_id);
}

void EagerProtocol::RunCycle() {
  // Snapshot of this cycle's initiators: every engaged node with a
  // non-empty remaining list. Tasks created during the cycle (list portions
  // kept by destinations) act from the next cycle on.
  std::vector<std::pair<UserId, std::uint64_t>> initiators;
  for (UserId u : engaged_) {
    if (!system_->network().IsOnline(u)) continue;  // departed mid-query
    for (const auto& [qid, task] : system_->node(u).tasks()) {
      if (!task.remaining.empty()) initiators.emplace_back(u, qid);
    }
  }
  std::sort(initiators.begin(), initiators.end());
  system_->rng().Shuffle(&initiators);

  participants_.clear();
  for (const auto& [u, qid] : initiators) {
    P3QNode& node = system_->node(u);
    auto it = node.tasks().find(qid);
    if (it == node.tasks().end() || it->second.remaining.empty()) continue;
    GossipOnce(&node, &it->second);
    if (it->second.remaining.empty()) {
      node.tasks().erase(it);
      --state_.at(qid).active_tasks;
    }
  }

  // The "wave of refreshments": every user who took part in query gossip
  // this cycle also runs one lazy-style top-layer maintenance exchange at
  // the eager frequency ("maintain personal network as in lazy mode",
  // Algorithm 3 lines 12/24) — this is what makes the eager mode refresh
  // the querier's neighbourhood so effectively (Figure 9).
  std::vector<UserId> wave(participants_.begin(), participants_.end());
  std::sort(wave.begin(), wave.end());
  system_->rng().Shuffle(&wave);
  for (UserId u : wave) {
    if (!system_->network().IsOnline(u)) continue;
    P3QNode& node = system_->node(u);
    const UserId partner = node.network().OldestNeighbour();
    if (partner == kInvalidUser || !system_->network().IsOnline(partner)) {
      continue;
    }
    LazyProtocol::RunProfileExchange(system_, u, partner);
    node.network().TouchGossiped(partner);
    system_->node(partner).network().ResetTimestamp(u);
  }

  // End of cycle: queriers integrate the partial results received during
  // this cycle and refresh their top-k.
  for (auto& [qid, state] : state_) {
    if (state.finalized) continue;
    const bool complete = state.active_tasks == 0;
    state.query->EndOfCycle(complete);
    state.finalized = complete;
  }
}

std::vector<std::uint64_t> EagerProtocol::AllQueryIds() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(state_.size());
  for (const auto& [qid, state] : state_) ids.push_back(qid);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void EagerProtocol::Forget(std::uint64_t id) {
  for (UserId u : state_.at(id).reached) {
    system_->node(u).tasks().erase(id);
  }
  state_.erase(id);
}

}  // namespace p3q
