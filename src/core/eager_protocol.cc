#include "core/eager_protocol.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "core/p3q_system.h"
#include "obs/trace.h"
#include "sim/checkpoint.h"

namespace p3q {
namespace {

/// Wire size of a forwarded query gossip: the remaining list, the query's
/// tags (16 B strings on the wire) and the querier id.
std::size_t ForwardBytes(const EagerTask& task) {
  return task.remaining.size() * kBytesPerUserId + task.tags.size() * 16 +
         kBytesPerUserId;
}

}  // namespace

EagerProtocol::EagerProtocol(P3QSystem* system) : system_(system) {}

PartialResultMessage EagerProtocol::BuildPartialResult(
    const std::vector<ProfilePtr>& profiles, const std::vector<UserId>& owners,
    const std::vector<TagId>& tags) {
  std::unordered_map<ItemId, std::uint32_t> scores;
  for (const ProfilePtr& profile : profiles) {
    for (const auto& [item, score] : profile->ScoreQuery(tags)) {
      scores[item] += score;
    }
  }
  PartialResultMessage message;
  message.entries.assign(scores.begin(), scores.end());
  std::sort(message.entries.begin(), message.entries.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  message.used_profiles = owners;
  return message;
}

std::uint64_t EagerProtocol::IssueQuery(const QuerySpec& spec) {
  const std::uint64_t id = next_id_++;
  P3QNode& querier = system_->node(spec.querier);

  QueryState state;
  state.query = std::make_unique<ActiveQuery>(
      id, spec, system_->config().top_k, querier.network().size());
  state.reached.insert(spec.querier);

  // Algorithm 2 line 3: process Q with the locally stored profiles first.
  std::vector<ProfilePtr> stored = querier.network().StoredProfiles();
  if (!stored.empty()) {
    std::vector<UserId> owners;
    owners.reserve(stored.size());
    for (const ProfilePtr& p : stored) owners.push_back(p->owner());
    state.query->DeliverPartialResult(
        BuildPartialResult(stored, owners, spec.tags));
  }

  // Remaining list: network members whose profiles are not stored.
  std::vector<UserId> remaining = querier.network().MembersWithoutProfile();
  const bool complete = remaining.empty();
  if (!complete) {
    EagerTask task;
    task.query_id = id;
    task.querier = spec.querier;
    task.tags = spec.tags;
    task.remaining = std::move(remaining);
    task.epoch = next_epoch_++;
    querier.tasks().emplace(id, std::move(task));
    state.active_tasks = 1;
  }
  state.query->EndOfCycle(complete);  // cycle-0 snapshot (local result)
  state.finalized = complete;
  state_.emplace(id, std::move(state));
  return id;
}

UserId EagerProtocol::SelectDestination(const P3QNode* initiator,
                                        const EagerTask& task, Rng* rng) {
  const Network& net = system_->network();
  // Remaining-list members that are personal-network neighbours, by
  // descending timestamp (Algorithm 3 line 5), then the rest in random
  // order. The first online candidate wins; the number of unresponsive
  // contacts tried is bounded per cycle.
  struct Scored {
    UserId user;
    std::uint32_t timestamp;
  };
  std::vector<Scored> neighbours;
  std::vector<UserId> others;
  for (UserId w : task.remaining) {
    const NetworkEntry* e = initiator->network().Find(w);
    if (e != nullptr) {
      neighbours.push_back(Scored{w, e->timestamp});
    } else {
      others.push_back(w);
    }
  }
  std::sort(neighbours.begin(), neighbours.end(),
            [](const Scored& a, const Scored& b) {
              if (a.timestamp != b.timestamp) return a.timestamp > b.timestamp;
              return a.user < b.user;
            });
  rng->Shuffle(&others);

  int attempts_left = system_->config().offline_retry + 1;
  for (const Scored& s : neighbours) {
    if (net.IsOnline(s.user)) return s.user;
    if (--attempts_left <= 0) return kInvalidUser;
  }
  for (UserId w : others) {
    if (net.IsOnline(w)) return w;
    if (--attempts_left <= 0) return kInvalidUser;
  }
  return kInvalidUser;
}

bool EagerProtocol::PlanGossip(const P3QNode* node, const EagerTask& task,
                               const PlanContext& ctx,
                               TaskGossipMessage* message) {
  const UserId dest_id = SelectDestination(node, task, ctx.rng);
  if (dest_id == kInvalidUser) return false;  // every candidate offline: stall
  const P3QNode* dest = &system_->node(dest_id);

  PlannedGossip g;
  g.query_id = task.query_id;
  g.dest = dest_id;
  g.epoch = task.epoch;
  g.generation = task.generation;
  g.consumed = task.remaining.size();
  g.fwd_bytes = ForwardBytes(task);

  // Destination prunes the list with the (frozen) profiles she can serve
  // (Algorithm 3 line 18) and processes her share of the query.
  std::vector<UserId> found_owners;
  std::vector<ProfilePtr> found_profiles;
  std::vector<UserId> rest;
  for (UserId w : task.remaining) {
    ProfilePtr p = dest->FindUsableProfile(w);
    if (p != nullptr) {
      found_owners.push_back(w);
      found_profiles.push_back(std::move(p));
    } else {
      rest.push_back(w);
    }
  }
  if (!found_owners.empty()) {
    g.partial = BuildPartialResult(found_profiles, found_owners, task.tags);
    g.has_partial = true;
  }

  // Split the pruned list: α back to the initiator, 1-α kept by the
  // destination as her own task (Algorithm 3 lines 19-21).
  ctx.rng->Shuffle(&rest);
  const std::size_t n_returned = static_cast<std::size_t>(
      std::llround(system_->config().alpha * static_cast<double>(rest.size())));
  g.returned.assign(rest.begin(),
                    rest.begin() + static_cast<std::ptrdiff_t>(n_returned));
  g.kept.assign(rest.begin() + static_cast<std::ptrdiff_t>(n_returned),
                rest.end());

  // The piggybacked lazy-style maintenance (Algorithm 3 lines 6, 12, 24):
  // planned here (the expensive screening), committed with the gossip.
  Metrics& traffic = system_->network().ShardTraffic(ctx.shard);
  g.exchange = LazyProtocol::PlanProfileExchange(system_, node->id(), dest_id,
                                                ctx.rng, &traffic);

  // Wire costs are recorded at SEND time, like all plan-phase traffic: a
  // message that is later dropped or discarded as stale still burned the
  // bandwidth. (The querier-side QueryTraffic bookkeeping stays at commit
  // time — it counts what the querier actually received.)
  traffic.Record(MessageType::kEagerQueryForward, g.fwd_bytes);
  traffic.Record(MessageType::kEagerQueryReturn,
                 g.returned.size() * kBytesPerUserId + kBytesPerUserId);
  if (g.has_partial) {
    traffic.Record(MessageType::kPartialResult, g.partial.WireBytes());
  }
  if (Tracer* tracer = system_->tracer(); tracer != nullptr) {
    TraceEvent event;
    event.cycle = ctx.cycle;
    event.kind = TraceEventKind::kGossipPlanned;
    event.node = node->id();
    event.peer = g.dest;
    event.id = g.query_id;
    event.value = static_cast<std::int64_t>(g.consumed);
    tracer->EmitShard(ctx.shard, event);
  }
  message->gossips.push_back(std::move(g));
  return true;
}

void EagerProtocol::BeginCycle(std::uint64_t /*cycle*/) {
  participants_.clear();
}

bool EagerProtocol::ActiveInCycle(UserId node) const {
  // Read-only probe, safe from plan threads; a task can appear on a node
  // only through a commit (sequential), never mid-plan, and only the
  // node's own commit removes one — so the answer cannot flip to false
  // between a node's plan and its commit.
  return !system_->node(node).tasks().empty();
}

void EagerProtocol::PlanCycle(UserId node_id, const PlanContext& ctx) {
  // The node's own tasks are owner-private plan state (like the probe memo
  // in the lazy mode): only this node's shard thread touches them here.
  P3QNode& node = system_->node(node_id);
  if (node.tasks().empty()) return;

  // Every non-empty task this node holds gossips once per cycle, in
  // query-id order (tasks created during this cycle act from the next one)
  // — unless a gossip of the task is still in flight, in which case the
  // owner waits for the reply until the re-issue deadline passes.
  std::vector<std::uint64_t> qids;
  qids.reserve(node.tasks().size());
  for (const auto& [qid, task] : node.tasks()) {
    if (!task.remaining.empty()) qids.push_back(qid);
  }
  std::sort(qids.begin(), qids.end());

  // With a finite eager_gossip_budget the node plans at most that many
  // gossips this cycle; the scan starts at a cycle-rotated offset so no
  // query id is structurally starved while the node is over budget.
  const int budget = system_->config().eager_gossip_budget;
  const std::size_t start =
      budget > 0 ? static_cast<std::size_t>(ctx.cycle % qids.size()) : 0;
  int planned = 0;

  auto message = std::make_unique<TaskGossipMessage>();
  for (std::size_t i = 0; i < qids.size(); ++i) {
    if (budget > 0 && planned >= budget) break;
    const std::uint64_t qid = qids[(start + i) % qids.size()];
    EagerTask& task = node.tasks().at(qid);
    if (task.in_flight) {
      if (ctx.cycle < task.in_flight_until) continue;  // awaiting the reply
      // Deadline passed: assume the message lost, supersede it (a late
      // arrival with the old generation is discarded) and re-issue.
      ++task.generation;
      task.in_flight = false;
      ++shard_reissues_[ctx.shard];
    }
    if (PlanGossip(&node, task, ctx, message.get())) {
      ++planned;
      task.in_flight = true;
      task.in_flight_until = ctx.cycle + 1 +
                             static_cast<std::uint64_t>(
                                 system_->config().eager_retry_cycles);
    }
  }
  if (message->gossips.size() > 1) {
    // The rotated scan can plan out of id order; restore it so the
    // message's gossips commit in query-id order like the unbudgeted path.
    std::sort(message->gossips.begin(), message->gossips.end(),
              [](const PlannedGossip& a, const PlannedGossip& b) {
                return a.query_id < b.query_id;
              });
  }
  if (!message->gossips.empty()) ctx.Send(std::move(message));
}

void EagerProtocol::EndPlan(std::uint64_t /*cycle*/) {
  system_->network().MergeShardTraffic();
  for (std::uint64_t& reissues : shard_reissues_) {
    timeout_reissues_ += reissues;
    reissues = 0;
  }
}

void EagerProtocol::CommitGossip(P3QNode* node, std::uint64_t send_cycle,
                                 std::uint64_t cycle, PlannedGossip* g) {
  const auto trace_stale = [&] {
    ++stale_messages_dropped_;
    if (Tracer* tracer = system_->tracer(); tracer != nullptr) {
      TraceEvent event;
      event.cycle = cycle;
      event.kind = TraceEventKind::kMessageStale;
      event.node = node->id();
      event.peer = g->dest;
      event.id = g->query_id;
      event.value = static_cast<std::int64_t>(cycle - send_cycle);
      tracer->Emit(event);
    }
  };
  const auto state_it = state_.find(g->query_id);
  if (state_it == state_.end()) {
    // The querier's state was forgotten while the gossip was in flight.
    trace_stale();
    return;
  }
  const auto it = node->tasks().find(g->query_id);
  if (it == node->tasks().end() || it->second.epoch != g->epoch ||
      it->second.generation != g->generation) {
    // The task this gossip belonged to is gone: a timeout re-issue
    // superseded it, it completed, or it died and was recreated from
    // another sender's kept portion (fresh epoch). Discard so nothing is
    // double-applied against the wrong incarnation.
    trace_stale();
    return;
  }
  EagerTask& task = it->second;
  task.in_flight = false;  // the reply arrived; the task may gossip again
  QueryState& state = state_it->second;

  participants_.insert(node->id());
  participants_.insert(g->dest);

  // Forward Q and the remaining list (wire cost was paid at send time).
  state.query->traffic().forwarded_list_bytes += g->fwd_bytes;
  state.query->traffic().forward_messages += 1;
  state.reached.insert(g->dest);

  // The destination's share of the query.
  if (g->has_partial) {
    const std::size_t bytes = g->partial.WireBytes();
    state.query->traffic().partial_result_bytes += bytes;
    state.query->traffic().partial_result_messages += 1;
    state.query->DeliverPartialResult(std::move(g->partial));
  }

  // The kept portion becomes (or extends) the destination's task.
  if (!g->kept.empty()) {
    P3QNode& dest = system_->node(g->dest);
    auto [dit, created] = dest.tasks().try_emplace(g->query_id);
    if (created) {
      dit->second.query_id = g->query_id;
      dit->second.querier = task.querier;
      dit->second.tags = task.tags;
      dit->second.epoch = next_epoch_++;
      ++state.active_tasks;
    }
    dit->second.remaining.insert(dit->second.remaining.end(), g->kept.begin(),
                                 g->kept.end());
  }

  // The returned portion replaces the consumed entries of this node's task.
  // Entries other commits appended after planning are preserved — only
  // appends can have happened to this incarnation (the epoch/generation
  // gate above rules everything else out), so they form the tail past
  // `consumed`.
  const std::size_t ret_bytes =
      g->returned.size() * kBytesPerUserId + kBytesPerUserId;
  state.query->traffic().returned_list_bytes += ret_bytes;
  state.query->traffic().return_messages += 1;
  std::vector<UserId> merged = std::move(g->returned);
  merged.insert(merged.end(),
                task.remaining.begin() +
                    static_cast<std::ptrdiff_t>(
                        std::min(g->consumed, task.remaining.size())),
                task.remaining.end());
  task.remaining = std::move(merged);

  // Timestamps and the piggybacked lazy-style maintenance (Algorithm 3
  // lines 6, 12, 24).
  node->network().ResetTimestamp(g->dest);
  system_->node(g->dest).network().ResetTimestamp(node->id());
  LazyProtocol::CommitProfileExchange(system_, g->exchange);

  if (Tracer* tracer = system_->tracer(); tracer != nullptr) {
    TraceEvent event;
    event.cycle = cycle;
    event.kind = TraceEventKind::kGossipCommitted;
    event.node = node->id();
    event.peer = g->dest;
    event.id = g->query_id;
    event.value = static_cast<std::int64_t>(cycle - send_cycle);
    tracer->Emit(event);
  }

  if (task.remaining.empty()) {
    node->tasks().erase(it);
    --state.active_tasks;
  }
}

void EagerProtocol::CommitMessage(UserId sender, std::uint64_t send_cycle,
                                  std::uint64_t cycle, DeliveryMessage& message,
                                  Rng* /*rng*/) {
  auto& msg = static_cast<TaskGossipMessage&>(message);
  P3QNode* node = &system_->node(sender);
  for (PlannedGossip& g : msg.gossips) {
    CommitGossip(node, send_cycle, cycle, &g);
  }
}

void EagerProtocol::EndCycle(std::uint64_t /*cycle*/, Rng* rng) {
  // The "wave of refreshments": every user who took part in query gossip
  // this cycle also runs one lazy-style top-layer maintenance exchange at
  // the eager frequency ("maintain personal network as in lazy mode",
  // Algorithm 3 lines 12/24) — this is what makes the eager mode refresh
  // the querier's neighbourhood so effectively (Figure 9). Sequential, in
  // ascending user order, off the cycle's dedicated stream.
  std::vector<UserId> wave(participants_.begin(), participants_.end());
  std::sort(wave.begin(), wave.end());
  for (UserId u : wave) {
    if (!system_->network().IsOnline(u)) continue;
    P3QNode& node = system_->node(u);
    const UserId partner = node.network().OldestNeighbour();
    if (partner == kInvalidUser || !system_->network().IsOnline(partner)) {
      continue;
    }
    LazyProtocol::RunProfileExchange(system_, u, partner, rng);
    node.network().TouchGossiped(partner);
    system_->node(partner).network().ResetTimestamp(u);
  }

  // End of cycle: queriers integrate the partial results received during
  // this cycle and refresh their top-k.
  for (auto& [qid, state] : state_) {
    if (state.finalized) continue;
    const bool complete = state.active_tasks == 0;
    state.query->EndOfCycle(complete);
    state.finalized = complete;
  }
}

std::vector<std::uint64_t> EagerProtocol::AllQueryIds() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(state_.size());
  for (const auto& [qid, state] : state_) ids.push_back(qid);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::uint64_t EagerProtocol::late_partial_results_dropped() const {
  std::uint64_t total = forgotten_late_results_;
  for (const auto& [qid, state] : state_) {
    total += state.query->late_results_dropped();
  }
  return total;
}

void EagerProtocol::Forget(std::uint64_t id) {
  QueryState& state = StateOrThrow(id);
  // Keep the drop total monotone across Forget (phase deltas subtract).
  forgotten_late_results_ += state.query->late_results_dropped();
  for (UserId u : state.reached) {
    system_->node(u).tasks().erase(id);
  }
  state_.erase(id);
}

EagerProtocol::QueryState& EagerProtocol::StateOrThrow(std::uint64_t id) {
  const auto it = state_.find(id);
  if (it == state_.end()) {
    throw std::out_of_range("unknown query id " + std::to_string(id) +
                            " (never issued, or already forgotten)");
  }
  return it->second;
}

const EagerProtocol::QueryState& EagerProtocol::StateOrThrow(
    std::uint64_t id) const {
  return const_cast<EagerProtocol*>(this)->StateOrThrow(id);
}

namespace {

void WritePartialResult(CheckpointWriter* out,
                        const PartialResultMessage& message) {
  out->U64(message.entries.size());
  for (const auto& [item, score] : message.entries) {
    out->U32(item);
    out->U32(score);
  }
  out->U64(message.used_profiles.size());
  for (UserId u : message.used_profiles) out->U32(u);
}

PartialResultMessage ReadPartialResult(CheckpointReader* in) {
  PartialResultMessage message;
  const std::uint64_t num_entries = in->Count(8);
  message.entries.reserve(static_cast<std::size_t>(num_entries));
  for (std::uint64_t e = 0; e < num_entries; ++e) {
    const ItemId item = in->U32();
    const std::uint32_t score = in->U32();
    message.entries.emplace_back(item, score);
  }
  const std::uint64_t num_used = in->Count(4);
  message.used_profiles.reserve(static_cast<std::size_t>(num_used));
  for (std::uint64_t u = 0; u < num_used; ++u) {
    message.used_profiles.push_back(in->U32());
  }
  return message;
}

}  // namespace

void EagerProtocol::EncodeMessage(const DeliveryMessage& message,
                                  CheckpointWriter* out,
                                  ProfilePool* pool) const {
  const auto& gossip = static_cast<const TaskGossipMessage&>(message);
  out->U64(gossip.gossips.size());
  for (const PlannedGossip& g : gossip.gossips) {
    out->U64(g.query_id);
    out->U32(g.dest);
    out->U64(g.epoch);
    out->U32(g.generation);
    out->U64(g.consumed);
    out->U64(g.fwd_bytes);
    out->U8(g.has_partial ? 1 : 0);
    if (g.has_partial) WritePartialResult(out, g.partial);
    out->U64(g.returned.size());
    for (UserId u : g.returned) out->U32(u);
    out->U64(g.kept.size());
    for (UserId u : g.kept) out->U32(u);
    LazyProtocol::EncodeExchangePlan(g.exchange, out, pool);
  }
}

std::unique_ptr<DeliveryMessage> EagerProtocol::DecodeMessage(
    CheckpointReader* in, const ProfileTable& profiles) const {
  auto message = std::make_unique<TaskGossipMessage>();
  const std::uint64_t num_gossips = in->Count(48);
  message->gossips.reserve(static_cast<std::size_t>(num_gossips));
  for (std::uint64_t i = 0; i < num_gossips; ++i) {
    PlannedGossip g;
    g.query_id = in->U64();
    g.dest = in->U32();
    g.epoch = in->U64();
    g.generation = in->U32();
    g.consumed = static_cast<std::size_t>(in->U64());
    g.fwd_bytes = static_cast<std::size_t>(in->U64());
    g.has_partial = in->U8() != 0;
    if (g.has_partial) g.partial = ReadPartialResult(in);
    const std::uint64_t num_returned = in->Count(4);
    g.returned.reserve(static_cast<std::size_t>(num_returned));
    for (std::uint64_t r = 0; r < num_returned; ++r) {
      g.returned.push_back(in->U32());
    }
    const std::uint64_t num_kept = in->Count(4);
    g.kept.reserve(static_cast<std::size_t>(num_kept));
    for (std::uint64_t k = 0; k < num_kept; ++k) g.kept.push_back(in->U32());
    g.exchange = LazyProtocol::DecodeExchangePlan(in, profiles);
    message->gossips.push_back(std::move(g));
  }
  return message;
}

void EagerProtocol::SaveState(CheckpointWriter* out) const {
  std::vector<std::uint64_t> ids;
  ids.reserve(state_.size());
  for (const auto& [id, state] : state_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  out->U64(ids.size());
  for (std::uint64_t id : ids) {
    const QueryState& state = state_.at(id);
    state.query->SaveState(out);
    std::vector<UserId> reached(state.reached.begin(), state.reached.end());
    std::sort(reached.begin(), reached.end());
    out->U64(reached.size());
    for (UserId u : reached) out->U32(u);
    out->I64(state.active_tasks);
    out->U8(state.finalized ? 1 : 0);
  }
  out->U64(timeout_reissues_);
  out->U64(stale_messages_dropped_);
  out->U64(forgotten_late_results_);
  out->U64(next_id_);
  out->U64(next_epoch_);
  out->Sentinel();
}

void EagerProtocol::LoadState(CheckpointReader* in) {
  // Participants and shard mailboxes are intra-cycle scratch — empty at
  // every barrier, so a freshly constructed protocol starts them empty.
  std::unordered_map<std::uint64_t, QueryState> loaded;
  const std::uint64_t num_queries = in->Count(64);
  std::uint64_t max_id = 0;
  std::uint64_t prev_id = 0;
  for (std::uint64_t q = 0; q < num_queries; ++q) {
    auto query = std::make_unique<ActiveQuery>(ActiveQuery::LoadState(in));
    const std::uint64_t id = query->id();
    if (q > 0 && id <= prev_id) {
      throw CheckpointError("eager query ids out of order in checkpoint");
    }
    prev_id = id;
    max_id = id;
    QueryState state;
    state.query = std::move(query);
    const std::uint64_t num_reached = in->Count(4);
    for (std::uint64_t r = 0; r < num_reached; ++r) {
      state.reached.insert(in->U32());
    }
    const std::int64_t active_tasks = in->I64();
    if (active_tasks < 0) {
      throw CheckpointError("eager query " + std::to_string(id) +
                            " has a negative active task count");
    }
    state.active_tasks = static_cast<int>(active_tasks);
    state.finalized = in->U8() != 0;
    loaded.emplace(id, std::move(state));
  }
  const std::uint64_t timeout_reissues = in->U64();
  const std::uint64_t stale_dropped = in->U64();
  const std::uint64_t forgotten_late = in->U64();
  const std::uint64_t next_id = in->U64();
  const std::uint64_t next_epoch = in->U64();
  in->Sentinel("eager protocol");
  if (num_queries > 0 && max_id >= next_id) {
    throw CheckpointError("eager query id " + std::to_string(max_id) +
                          " collides with the next-id allocator (" +
                          std::to_string(next_id) + ")");
  }
  state_ = std::move(loaded);
  participants_.clear();
  shard_reissues_.fill(0);
  timeout_reissues_ = timeout_reissues;
  stale_messages_dropped_ = stale_dropped;
  forgotten_late_results_ = forgotten_late;
  next_id_ = next_id;
  next_epoch_ = next_epoch;
}

}  // namespace p3q
