// View entries exchanged by the gossip layers.
//
// A DigestInfo is what actually travels in gossip messages: a user id plus
// the Bloom digest of (a version of) her profile. In the simulator the
// digest is carried as the immutable profile snapshot it was computed from —
// protocol code only ever reads the snapshot's digest/items through the
// helpers below, and wire costs are accounted as digest bytes, so the
// semantics are exactly "a Bloom filter travelled", while exactness of the
// overlap check is emulated including the filter's false-positive rate.
#ifndef P3Q_GOSSIP_VIEW_H_
#define P3Q_GOSSIP_VIEW_H_

#include <cmath>
#include <cstdint>

#include "common/random.h"
#include "profile/profile.h"

namespace p3q {

/// A (user, profile digest) descriptor as carried by gossip messages.
struct DigestInfo {
  UserId user = kInvalidUser;
  ProfilePtr snapshot;  ///< the profile version the digest was built from

  std::uint32_t version() const { return snapshot->version(); }
  const BloomFilter& digest() const { return snapshot->digest(); }

  /// Wire size of the descriptor: digest bits + the user id.
  std::size_t WireBytes() const {
    return snapshot->digest().SizeBytes() + kBytesPerUserId;
  }
};

/// Simulates the receiver-side Bloom check "does Digest(other) contain at
/// least one item tagged by me?" — true on a genuine common item, and true
/// with the digest's false-positive probability otherwise (testing n items
/// against an FPP-f filter passes spuriously with probability 1-(1-f)^n).
inline bool DigestIndicatesCommonItem(const Profile& mine,
                                      const DigestInfo& theirs, Rng* rng) {
  if (mine.SharesItemWith(*theirs.snapshot)) return true;
  const double fpp = theirs.digest().EstimatedFpp();
  const double miss_all =
      std::pow(1.0 - fpp, static_cast<double>(mine.NumItems()));
  return rng->NextBool(1.0 - miss_all);
}

}  // namespace p3q

#endif  // P3Q_GOSSIP_VIEW_H_
