#include "gossip/peer_sampling.h"

#include <algorithm>
#include <unordered_map>

namespace p3q {

RandomView::RandomView(UserId self, std::size_t capacity)
    : self_(self), capacity_(capacity) {}

void RandomView::Init(std::vector<DigestInfo> entries) {
  entries_ = std::move(entries);
  if (entries_.size() > capacity_) entries_.resize(capacity_);
}

UserId RandomView::SelectRandomPeer(Rng* rng) const {
  if (entries_.empty()) return kInvalidUser;
  return entries_[rng->NextUint64(entries_.size())].user;
}

std::vector<DigestInfo> RandomView::MakeExchangePayload(
    const DigestInfo& self_digest) const {
  std::vector<DigestInfo> payload = entries_;
  payload.push_back(self_digest);
  return payload;
}

void RandomView::Merge(const std::vector<DigestInfo>& received, Rng* rng) {
  // Union by user, keeping the freshest digest of each.
  std::unordered_map<UserId, DigestInfo> merged;
  merged.reserve(entries_.size() + received.size());
  auto absorb = [&](const DigestInfo& d) {
    if (d.user == self_) return;
    auto [it, inserted] = merged.emplace(d.user, d);
    if (!inserted && d.version() > it->second.version()) it->second = d;
  };
  for (const auto& d : entries_) absorb(d);
  for (const auto& d : received) absorb(d);

  std::vector<DigestInfo> pool;
  pool.reserve(merged.size());
  for (auto& [user, d] : merged) pool.push_back(std::move(d));
  if (pool.size() <= capacity_) {
    entries_ = std::move(pool);
    return;
  }
  entries_ = rng->SampleWithoutReplacement(pool, capacity_);
}

void RandomView::Remove(UserId user) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [user](const DigestInfo& d) {
                                  return d.user == user;
                                }),
                 entries_.end());
}

}  // namespace p3q
