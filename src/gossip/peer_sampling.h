// Random peer sampling — the bottom gossip layer (Section 2.2.1).
//
// Implements the paper's variant of gossip-based peer sampling (Jelasity et
// al., TOCS 2007): every cycle a node picks a uniform peer from its random
// view, the two swap their r digests, and each keeps r entries selected
// uniformly at random from the union. The random view keeps the overlay
// connected regardless of interest clustering and feeds fresh candidates to
// the personal-network layer.
#ifndef P3Q_GOSSIP_PEER_SAMPLING_H_
#define P3Q_GOSSIP_PEER_SAMPLING_H_

#include <vector>

#include "common/random.h"
#include "gossip/view.h"

namespace p3q {

/// One node's random view.
class RandomView {
 public:
  /// self: owning user; capacity: the paper's r (default 10).
  RandomView(UserId self, std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  const std::vector<DigestInfo>& entries() const { return entries_; }
  bool Empty() const { return entries_.empty(); }

  /// Replaces the view content (bootstrap).
  void Init(std::vector<DigestInfo> entries);

  /// Uniformly random peer id from the view; kInvalidUser when empty.
  UserId SelectRandomPeer(Rng* rng) const;

  /// The digests this node sends in one exchange: its whole view plus its
  /// own fresh descriptor (standard peer-sampling push so newcomers spread).
  std::vector<DigestInfo> MakeExchangePayload(const DigestInfo& self_digest) const;

  /// Merges received digests: union of current view and received entries
  /// (deduplicated by user keeping the newest version, never containing
  /// self), then keeps `capacity` uniformly random survivors.
  void Merge(const std::vector<DigestInfo>& received, Rng* rng);

  /// Drops a user from the view (e.g. detected offline).
  void Remove(UserId user);

 private:
  UserId self_;
  std::size_t capacity_;
  std::vector<DigestInfo> entries_;
};

}  // namespace p3q

#endif  // P3Q_GOSSIP_PEER_SAMPLING_H_
