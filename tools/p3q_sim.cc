// p3q_sim — command-line driver for custom P3Q simulations.
//
// Runs the full pipeline (trace -> lazy convergence -> queries -> optional
// churn/updates) with every protocol parameter exposed as a flag, and prints
// the quality/cost summary. Examples:
//
//   p3q_sim --users=2000 --c=10 --lazy-cycles=150 --queries=50
//   p3q_sim --users=800 --lambda=1 --departure=0.5 --queries=100
//   p3q_sim --input-trace=delicious.tsv --s=1000 --c=20 --alpha=0.3
//
// Declarative timeline-driven workloads (the scenario engine):
//
//   p3q_sim --list-scenarios
//   p3q_sim --scenario=diurnal --users=600 --json=out.json
//   p3q_sim --scenario=mixed-stress --cycle-scale=0.5 --csv=out.csv --timing
//
// Asynchronous delivery (the latency model between plan and commit):
//
//   p3q_sim --latency=fixed:2 --users=500 --queries=20
//   p3q_sim --scenario=steady-state --latency=uniform:1:3 --json=out.json
//   p3q_sim --loss=0.05 --converge=0.9 --lazy-cycles=300 --queries=0
//
// Open-loop serving (latency SLOs and saturation sweeps):
//
//   p3q_sim --scenario=open-loop-steady --arrival-rate=2 --json=out.json
//   p3q_sim --scenario=open-loop-saturation --arrival-sweep=1:8:1
//
// Observability (deterministic event traces and wall-clock profiles):
//
//   p3q_sim --scenario=diurnal --trace=events.jsonl
//   p3q_sim --scenario=diurnal --trace=trace.json --trace-format=chrome
//   p3q_sim --scenario=mixed-stress --trace=q.jsonl --trace-filter=query_issued,query_completed
//   p3q_sim --scenario=steady-state --profile=profile.json --progress=200
//
// Checkpoint/resume (deterministic snapshots of a running scenario):
//
//   p3q_sim --scenario=diurnal --checkpoint-at=200 --checkpoint=run.ckpt
//   p3q_sim --resume=run.ckpt --json=out.json
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/centralized_topk.h"
#include "baseline/ideal_network.h"
#include "common/parse.h"
#include "common/table_printer.h"
#include "core/p3q_system.h"
#include "dataset/generator.h"
#include "dataset/query_gen.h"
#include "dataset/storage_dist.h"
#include "dataset/trace_loader.h"
#include "eval/metrics_eval.h"
#include "eval/recall.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "profile/score_kernel_simd.h"
#include "scenario/registry.h"
#include "scenario/report.h"
#include "scenario/runner.h"
#include "sim/checkpoint.h"
#include "sim/delivery.h"

namespace {

/// An --arrival-sweep=lo:hi:step saturation sweep.
struct SweepSpec {
  double lo = 0;
  double hi = 0;
  double step = 0;
};

struct Options {
  int users = 1000;
  int network_size = -1;  // default: users/10
  int stored = 10;
  double lambda = 0;  // >0: heterogeneous storage instead of uniform c
  double alpha = 0.5;
  int top_k = 10;
  p3q::SimilarityMetric similarity = p3q::SimilarityMetric::kCommonActions;
  int lazy_cycles = 100;
  int eager_cycles = 15;
  int queries = 50;
  double departure = 0;
  bool apply_updates = false;
  std::uint64_t seed = 1;
  int threads = 0;  // 0 = inherit the P3Q_THREADS environment default
  std::string trace_path;
  bool help = false;
  // Scoring kernel.
  std::string simd;  // --simd=off|scalar|avx2|avx512|auto ('' = P3Q_SIMD env)
  // Delivery layer.
  std::optional<p3q::LatencySpec> latency;
  double converge = 0;  // >0: measure cycles-to-convergence at this ratio
  // Scenario engine.
  std::string scenario;
  bool list_scenarios = false;
  double cycle_scale = 1.0;
  std::string json_path;
  std::string csv_path;
  bool timing = false;
  // Open-loop serving.
  std::optional<double> arrival_rate;
  std::optional<SweepSpec> arrival_sweep;
  // Observability.
  std::string trace_out;                   // --trace=FILE (event trace)
  std::string trace_format = "jsonl";      // jsonl | chrome
  std::uint32_t trace_mask = 0;            // 0 = every kind
  std::vector<p3q::UserId> trace_nodes;    // empty = every node
  int trace_ring = 0;                      // 0 = stream every event
  std::string profile_path;                // --profile=FILE
  std::uint64_t progress_every = 0;        // 0 = no heartbeat
  // Checkpoint/resume.
  std::optional<std::uint64_t> checkpoint_at;  // --checkpoint-at=CYCLE
  std::string checkpoint_path;                 // --checkpoint=FILE
  std::string resume_path;                     // --resume=FILE
  // The arrival override the snapshot was written with (filled from the
  // checkpoint header when resuming, never from a flag).
  std::optional<p3q::ArrivalSpec> resume_arrivals;
};

void PrintUsage() {
  std::cout <<
      "p3q_sim — run a P3Q simulation\n\n"
      "  --users=N          population size for the synthetic trace (1000)\n"
      "  --input-trace=PATH load a real user<TAB>item<TAB>tag trace instead\n"
      "  --s=N              personal network size (users/10)\n"
      "  --c=N              stored profiles per user (10)\n"
      "  --lambda=X         heterogeneous storage, truncated Poisson(X)\n"
      "  --alpha=X          remaining-list split parameter (0.5)\n"
      "  --k=N              top-k size (10)\n"
      "  --similarity=M     personal-network distance: common (default,\n"
      "                     alias common_actions), jaccard, cosine or\n"
      "                     overlap; anything else is rejected\n"
      "  --lazy-cycles=N    lazy maintenance cycles before querying (100)\n"
      "  --eager-cycles=N   eager cycles per query (15)\n"
      "  --queries=N        number of queries to run (50)\n"
      "  --departure=X      fraction of users leaving before queries (0)\n"
      "  --updates          apply a profile-update batch before queries\n"
      "  --seed=N           master seed (1)\n"
      "  --threads=N        plan-phase worker threads (default: P3Q_THREADS\n"
      "                     env or 1); results are byte-identical for every N\n"
      "  --simd=LANE        scoring-kernel SIMD lane: off (alias scalar),\n"
      "                     avx2, avx512 or auto (default: P3Q_SIMD env, or\n"
      "                     the widest usable lane); an unusable lane falls\n"
      "                     back with a warning. Results are byte-identical\n"
      "                     for every lane\n"
      "  --latency=MODEL    message-delivery latency model: zero (default),\n"
      "                     fixed:K, uniform:LO:HI or lossy:P:MAX; overrides\n"
      "                     a scenario's own latency block. Deterministic\n"
      "                     and byte-identical for every --threads value\n"
      "  --loss=P           shorthand for --latency=lossy:P:2 (cannot be\n"
      "                     combined with a non-lossy --latency)\n"
      "  --converge=R       classic mode: run lazy cycles until the success\n"
      "                     ratio reaches R (checked every cycle, bounded by\n"
      "                     --lazy-cycles) and print cycles_to_convergence\n"
      "\nScenario engine (timeline-driven workloads):\n"
      "  --list-scenarios   print the built-in scenarios and exit\n"
      "  --scenario=NAME    run a named scenario timeline instead of the\n"
      "                     classic pipeline (honours --users, --seed, --s,\n"
      "                     --c, --alpha, --k)\n"
      "  --cycle-scale=X    stretch/compress every phase's cycle budget (1.0)\n"
      "  --json=PATH        write the structured scenario report as JSON\n"
      "  --csv=PATH         write the scenario report as CSV\n"
      "  --timing           include wall-clock throughput in JSON/CSV\n"
      "                     reports (off by default so reports from equal\n"
      "                     seeds are byte-identical)\n"
      "\nOpen-loop serving (scenario mode only):\n"
      "  --arrival-rate=R   override the scenario's open-loop arrival\n"
      "                     process with Poisson(R) queries per cycle on\n"
      "                     every eager/mixed phase; reports gain\n"
      "                     query-latency percentiles and SLO goodput\n"
      "  --arrival-sweep=LO:HI:STEP\n"
      "                     saturation sweep: run the scenario once per\n"
      "                     rate in [LO, HI] and print latency percentiles\n"
      "                     and goodput per rate (--json writes the sweep\n"
      "                     as a JSON array)\n"
      "\nObservability (deterministic traces and wall-clock profiles):\n"
      "  --trace=FILE       write a deterministic, cycle-stamped event trace\n"
      "                     (gossip, delivery, query lifecycle, liveness);\n"
      "                     byte-identical for every --threads value\n"
      "  --trace-format=F   trace format: jsonl (default, one JSON object\n"
      "                     per line) or chrome (trace_event JSON; load in\n"
      "                     Perfetto or chrome://tracing)\n"
      "  --trace-filter=KINDS\n"
      "                     comma-separated event kinds to keep (default:\n"
      "                     all), e.g. query_issued,query_completed\n"
      "  --trace-nodes=IDS  comma-separated node ids: keep only events whose\n"
      "                     node or peer is listed (default: all nodes)\n"
      "  --trace-ring=N     flight-recorder mode: keep only the last N\n"
      "                     accepted events and dump them at exit or when an\n"
      "                     invariant throws (default: stream everything)\n"
      "  --profile=FILE     write per-engine wall-clock phase breakdowns\n"
      "                     (plan/barrier/commit/drain/EndCycle seconds and\n"
      "                     per-shard plan imbalance) as JSON\n"
      "  --progress[=K]     scenario mode: print a stderr heartbeat every K\n"
      "                     timeline cycles (default K=100) with the cycle,\n"
      "                     open queries and messages in flight; stdout\n"
      "                     reports are untouched\n"
      "\nCheckpoint/resume (scenario mode only):\n"
      "  --checkpoint-at=CYCLE\n"
      "                     snapshot the full run state at the top of this\n"
      "                     timeline cycle (before its events fire) and keep\n"
      "                     running; requires --checkpoint=FILE\n"
      "  --checkpoint=FILE  where --checkpoint-at writes the snapshot\n"
      "  --resume=FILE      restore a run from a snapshot and replay only\n"
      "                     the remaining timeline; the scenario, seed and\n"
      "                     every result-affecting option come from the\n"
      "                     file, so the final report is byte-identical to\n"
      "                     the straight-through run's. --threads, --json,\n"
      "                     --csv, --trace and --progress still apply\n";
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  if (arg[len] == '\0') {
    value->clear();
    return true;
  }
  return false;
}

/// Strict whole-string numeric flag parsing (common/parse.h): a typo like
/// --users=1e3 or --threads=2x is a hard error, never a silent 0 the way
/// std::atoi would read it.
bool ParseIntFlag(const char* flag, const std::string& value, int* out) {
  if (!p3q::ParseStrictInt(value, out)) {
    std::cerr << flag << ": cannot parse '" << value << "' as an integer\n";
    return false;
  }
  return true;
}

bool ParseDoubleFlag(const char* flag, const std::string& value, double* out) {
  if (!p3q::ParseStrictDouble(value, out)) {
    std::cerr << flag << ": cannot parse '" << value << "' as a number\n";
    return false;
  }
  return true;
}

bool ParseUint64Flag(const char* flag, const std::string& value,
                     std::uint64_t* out) {
  if (!p3q::ParseStrictUint64(value, out)) {
    std::cerr << flag << ": cannot parse '" << value
              << "' as a non-negative integer\n";
    return false;
  }
  return true;
}

/// Parses --arrival-sweep=LO:HI:STEP.
bool ParseSweepSpec(const std::string& value, SweepSpec* out) {
  const std::size_t first = value.find(':');
  const std::size_t second =
      first == std::string::npos ? std::string::npos
                                 : value.find(':', first + 1);
  if (first == std::string::npos || second == std::string::npos ||
      !p3q::ParseStrictDouble(value.substr(0, first), &out->lo) ||
      !p3q::ParseStrictDouble(value.substr(first + 1, second - first - 1),
                              &out->hi) ||
      !p3q::ParseStrictDouble(value.substr(second + 1), &out->step)) {
    std::cerr << "--arrival-sweep: expected LO:HI:STEP, got '" << value
              << "'\n";
    return false;
  }
  if (!(out->lo >= 0) || !(out->hi >= out->lo) || !(out->step > 0)) {
    std::cerr << "--arrival-sweep: need 0 <= LO <= HI and STEP > 0\n";
    return false;
  }
  return true;
}

std::optional<Options> ParseArgs(int argc, char** argv) {
  Options opt;
  std::string latency_text;
  std::optional<double> loss;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--help", &value)) {
      opt.help = true;
    } else if (ParseFlag(argv[i], "--users", &value)) {
      if (!ParseIntFlag("--users", value, &opt.users)) return std::nullopt;
    } else if (ParseFlag(argv[i], "--input-trace", &value)) {
      opt.trace_path = value;
    } else if (ParseFlag(argv[i], "--s", &value)) {
      if (!ParseIntFlag("--s", value, &opt.network_size)) return std::nullopt;
    } else if (ParseFlag(argv[i], "--c", &value)) {
      if (!ParseIntFlag("--c", value, &opt.stored)) return std::nullopt;
    } else if (ParseFlag(argv[i], "--lambda", &value)) {
      if (!ParseDoubleFlag("--lambda", value, &opt.lambda)) {
        return std::nullopt;
      }
    } else if (ParseFlag(argv[i], "--alpha", &value)) {
      if (!ParseDoubleFlag("--alpha", value, &opt.alpha)) return std::nullopt;
    } else if (ParseFlag(argv[i], "--k", &value)) {
      if (!ParseIntFlag("--k", value, &opt.top_k)) return std::nullopt;
    } else if (ParseFlag(argv[i], "--similarity", &value)) {
      if (!p3q::ParseSimilarityMetric(value, &opt.similarity)) {
        std::cerr << "--similarity: unknown metric '" << value
                  << "' (expected common|jaccard|cosine|overlap)\n";
        return std::nullopt;
      }
    } else if (ParseFlag(argv[i], "--lazy-cycles", &value)) {
      if (!ParseIntFlag("--lazy-cycles", value, &opt.lazy_cycles)) {
        return std::nullopt;
      }
    } else if (ParseFlag(argv[i], "--eager-cycles", &value)) {
      if (!ParseIntFlag("--eager-cycles", value, &opt.eager_cycles)) {
        return std::nullopt;
      }
    } else if (ParseFlag(argv[i], "--queries", &value)) {
      if (!ParseIntFlag("--queries", value, &opt.queries)) return std::nullopt;
    } else if (ParseFlag(argv[i], "--departure", &value)) {
      if (!ParseDoubleFlag("--departure", value, &opt.departure)) {
        return std::nullopt;
      }
    } else if (ParseFlag(argv[i], "--updates", &value)) {
      opt.apply_updates = true;
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      if (!ParseUint64Flag("--seed", value, &opt.seed)) return std::nullopt;
    } else if (ParseFlag(argv[i], "--threads", &value)) {
      if (!ParseIntFlag("--threads", value, &opt.threads)) return std::nullopt;
    } else if (ParseFlag(argv[i], "--simd", &value)) {
      if (value.empty()) {
        std::cerr << "--simd: expected off|scalar|avx2|avx512|auto\n";
        return std::nullopt;
      }
      opt.simd = value;
    } else if (ParseFlag(argv[i], "--latency", &value)) {
      latency_text = value;
    } else if (ParseFlag(argv[i], "--loss", &value)) {
      double p = 0;
      if (!ParseDoubleFlag("--loss", value, &p)) return std::nullopt;
      loss = p;
    } else if (ParseFlag(argv[i], "--converge", &value)) {
      if (!ParseDoubleFlag("--converge", value, &opt.converge)) {
        return std::nullopt;
      }
    } else if (ParseFlag(argv[i], "--scenario", &value)) {
      opt.scenario = value;
    } else if (ParseFlag(argv[i], "--list-scenarios", &value)) {
      opt.list_scenarios = true;
    } else if (ParseFlag(argv[i], "--cycle-scale", &value)) {
      if (!ParseDoubleFlag("--cycle-scale", value, &opt.cycle_scale)) {
        return std::nullopt;
      }
    } else if (ParseFlag(argv[i], "--arrival-rate", &value)) {
      double rate = 0;
      if (!ParseDoubleFlag("--arrival-rate", value, &rate)) {
        return std::nullopt;
      }
      opt.arrival_rate = rate;
    } else if (ParseFlag(argv[i], "--arrival-sweep", &value)) {
      SweepSpec sweep;
      if (!ParseSweepSpec(value, &sweep)) return std::nullopt;
      opt.arrival_sweep = sweep;
    } else if (ParseFlag(argv[i], "--json", &value)) {
      opt.json_path = value;
    } else if (ParseFlag(argv[i], "--csv", &value)) {
      opt.csv_path = value;
    } else if (ParseFlag(argv[i], "--timing", &value)) {
      opt.timing = true;
    } else if (ParseFlag(argv[i], "--trace-format", &value)) {
      opt.trace_format = value;
    } else if (ParseFlag(argv[i], "--trace-filter", &value)) {
      if (const std::string problem =
              p3q::ParseTraceKindMask(value, &opt.trace_mask);
          !problem.empty()) {
        std::cerr << "--trace-filter: " << problem << "\n";
        return std::nullopt;
      }
    } else if (ParseFlag(argv[i], "--trace-nodes", &value)) {
      std::stringstream ss(value);
      std::string token;
      while (std::getline(ss, token, ',')) {
        std::uint64_t id = 0;
        if (!p3q::ParseStrictUint64(token, &id)) {
          std::cerr << "--trace-nodes: cannot parse '" << token
                    << "' as a node id\n";
          return std::nullopt;
        }
        opt.trace_nodes.push_back(static_cast<p3q::UserId>(id));
      }
      if (opt.trace_nodes.empty()) {
        std::cerr << "--trace-nodes: expected a comma-separated id list\n";
        return std::nullopt;
      }
    } else if (ParseFlag(argv[i], "--trace-ring", &value)) {
      if (!ParseIntFlag("--trace-ring", value, &opt.trace_ring)) {
        return std::nullopt;
      }
    } else if (ParseFlag(argv[i], "--trace", &value)) {
      opt.trace_out = value;
    } else if (ParseFlag(argv[i], "--checkpoint-at", &value)) {
      std::uint64_t at = 0;
      if (!ParseUint64Flag("--checkpoint-at", value, &at)) return std::nullopt;
      opt.checkpoint_at = at;
    } else if (ParseFlag(argv[i], "--checkpoint", &value)) {
      opt.checkpoint_path = value;
    } else if (ParseFlag(argv[i], "--resume", &value)) {
      opt.resume_path = value;
    } else if (ParseFlag(argv[i], "--profile", &value)) {
      opt.profile_path = value;
    } else if (ParseFlag(argv[i], "--progress", &value)) {
      opt.progress_every = 100;  // bare --progress: a sensible default K
      if (!value.empty() &&
          !ParseUint64Flag("--progress", value, &opt.progress_every)) {
        return std::nullopt;
      }
    } else {
      std::cerr << "unknown flag: " << argv[i] << "\n";
      return std::nullopt;
    }
  }
  if (opt.users < 1 && opt.trace_path.empty()) {
    std::cerr << "--users must be >= 1\n";
    return std::nullopt;
  }
  if (opt.lazy_cycles < 0 || opt.eager_cycles < 0 || opt.queries < 0) {
    std::cerr << "--lazy-cycles, --eager-cycles and --queries must be >= 0\n";
    return std::nullopt;
  }
  if (!(opt.cycle_scale > 0)) {
    std::cerr << "--cycle-scale must be > 0\n";
    return std::nullopt;
  }
  if (opt.threads < 0) {
    std::cerr << "--threads must be >= 0 (0 = inherit P3Q_THREADS)\n";
    return std::nullopt;
  }
  if (!opt.scenario.empty() && !p3q::HasScenario(opt.scenario)) {
    std::cerr << "unknown scenario: " << opt.scenario
              << " (see --list-scenarios)\n";
    return std::nullopt;
  }
  if (!opt.scenario.empty() && !opt.trace_path.empty()) {
    std::cerr << "--scenario runs on a synthetic trace; --trace is not "
                 "supported in scenario mode\n";
    return std::nullopt;
  }
  if (!latency_text.empty()) {
    p3q::LatencySpec spec;
    if (const std::string problem = p3q::ParseLatencySpec(latency_text, &spec);
        !problem.empty()) {
      std::cerr << "--latency: " << problem << "\n";
      return std::nullopt;
    }
    opt.latency = spec;
  }
  if (loss.has_value()) {
    if (*loss < 0.0 || *loss > 1.0) {
      std::cerr << "--loss must be in [0, 1]\n";
      return std::nullopt;
    }
    if (opt.latency.has_value() &&
        opt.latency->kind != p3q::LatencyKind::kLossy) {
      std::cerr << "--loss only combines with --latency=lossy:P:MAX (use "
                   "that form directly)\n";
      return std::nullopt;
    }
    p3q::LatencySpec spec =
        opt.latency.value_or(p3q::LatencySpec{p3q::LatencyKind::kLossy,
                                              /*fixed=*/0, /*lo=*/0, /*hi=*/0,
                                              /*loss=*/0.0, /*max_delay=*/2});
    spec.kind = p3q::LatencyKind::kLossy;
    spec.loss = *loss;
    opt.latency = spec;
  }
  if (opt.converge < 0 || opt.converge > 1.0) {
    std::cerr << "--converge must be in (0, 1]\n";
    return std::nullopt;
  }
  if (opt.converge > 0 && !opt.scenario.empty()) {
    std::cerr << "--converge applies to the classic pipeline, not scenario "
                 "mode\n";
    return std::nullopt;
  }
  if ((opt.arrival_rate.has_value() || opt.arrival_sweep.has_value()) &&
      opt.scenario.empty()) {
    std::cerr << "--arrival-rate/--arrival-sweep require --scenario=NAME\n";
    return std::nullopt;
  }
  if (opt.arrival_rate.has_value() && opt.arrival_sweep.has_value()) {
    std::cerr << "--arrival-rate and --arrival-sweep are mutually "
                 "exclusive\n";
    return std::nullopt;
  }
  if (opt.arrival_rate.has_value() && !(*opt.arrival_rate >= 0)) {
    std::cerr << "--arrival-rate must be >= 0\n";
    return std::nullopt;
  }
  if (opt.trace_format != "jsonl" && opt.trace_format != "chrome") {
    std::cerr << "--trace-format must be jsonl or chrome, got '"
              << opt.trace_format << "'\n";
    return std::nullopt;
  }
  if (opt.trace_out.empty() &&
      (opt.trace_mask != 0 || !opt.trace_nodes.empty() ||
       opt.trace_ring != 0)) {
    std::cerr << "--trace-filter/--trace-nodes/--trace-ring require "
                 "--trace=FILE\n";
    return std::nullopt;
  }
  if (opt.trace_ring < 0) {
    std::cerr << "--trace-ring must be >= 0\n";
    return std::nullopt;
  }
  if ((!opt.trace_out.empty() || !opt.profile_path.empty()) &&
      opt.arrival_sweep.has_value()) {
    std::cerr << "--trace/--profile cover a single run; they cannot be "
                 "combined with --arrival-sweep\n";
    return std::nullopt;
  }
  if (opt.progress_every > 0 && opt.scenario.empty() &&
      opt.resume_path.empty()) {
    std::cerr << "--progress requires --scenario=NAME\n";
    return std::nullopt;
  }
  if (opt.checkpoint_at.has_value() && opt.checkpoint_path.empty()) {
    std::cerr << "--checkpoint-at requires --checkpoint=FILE\n";
    return std::nullopt;
  }
  if (!opt.checkpoint_path.empty() && !opt.checkpoint_at.has_value()) {
    std::cerr << "--checkpoint requires --checkpoint-at=CYCLE\n";
    return std::nullopt;
  }
  if (opt.checkpoint_at.has_value() && opt.scenario.empty() &&
      opt.resume_path.empty()) {
    std::cerr << "--checkpoint-at requires --scenario=NAME or --resume=FILE\n";
    return std::nullopt;
  }
  if (opt.checkpoint_at.has_value() && opt.arrival_sweep.has_value()) {
    std::cerr << "--checkpoint-at covers a single run; it cannot be combined "
                 "with --arrival-sweep\n";
    return std::nullopt;
  }
  if (!opt.resume_path.empty()) {
    if (!opt.scenario.empty()) {
      std::cerr << "--resume reads the scenario from the snapshot; drop "
                   "--scenario\n";
      return std::nullopt;
    }
    if (opt.arrival_rate.has_value() || opt.arrival_sweep.has_value()) {
      std::cerr << "--resume restores the run's arrival process from the "
                   "snapshot; drop --arrival-rate/--arrival-sweep\n";
      return std::nullopt;
    }
    if (opt.latency.has_value()) {
      std::cerr << "--resume restores the run's latency model from the "
                   "snapshot; drop --latency/--loss\n";
      return std::nullopt;
    }
    if (opt.converge > 0) {
      std::cerr << "--converge applies to the classic pipeline, not "
                   "--resume\n";
      return std::nullopt;
    }
    if (!opt.trace_path.empty()) {
      std::cerr << "--resume regenerates the snapshot's synthetic trace; "
                   "--input-trace is not supported\n";
      return std::nullopt;
    }
  }
  return opt;
}

/// The arrival process a CLI rate override produces: the scenario's own
/// spec (keeping its SLO/recall target) with the Poisson rate replaced.
p3q::ArrivalSpec OverrideArrivals(const p3q::Scenario& scenario, double rate) {
  p3q::ArrivalSpec spec = scenario.arrivals;
  spec.kind = p3q::ArrivalKind::kPoisson;
  spec.rate = rate;
  spec.trace.clear();
  return spec;
}

/// The runner options a CLI invocation maps to (shared between the single
/// run and the sweep).
p3q::ScenarioRunnerOptions MakeRunnerOptions(const Options& opt) {
  p3q::ScenarioRunnerOptions options;
  options.users = opt.users;
  options.seed = opt.seed;
  options.cycle_scale = opt.cycle_scale;
  options.network_size = opt.network_size;  // <= 0 => users/10 default
  options.stored_profiles = opt.stored;
  options.alpha = opt.alpha;
  options.top_k = opt.top_k;
  options.similarity = opt.similarity;
  options.threads = opt.threads;
  options.latency = opt.latency;  // unset = the scenario's own model
  options.progress_every = opt.progress_every;
  options.checkpoint_at = opt.checkpoint_at;
  options.checkpoint_path = opt.checkpoint_path;
  options.resume_path = opt.resume_path;
  return options;
}

/// One run's observability attachments: the trace file/sink/tracer chain
/// and the profiler, built from the --trace*/--profile flags. Either half
/// may be absent.
struct ObsSession {
  std::ofstream trace_stream;
  std::unique_ptr<p3q::TraceSink> sink;
  std::unique_ptr<p3q::Tracer> tracer;
  std::unique_ptr<p3q::PhaseProfiler> profiler;
};

/// Opens the trace file and builds the tracer/profiler the flags ask for.
/// Returns false (with a stderr message) when the trace file cannot be
/// opened.
bool OpenObsSession(const Options& opt, ObsSession* obs) {
  if (!opt.trace_out.empty()) {
    obs->trace_stream.open(opt.trace_out,
                           std::ios::binary | std::ios::trunc);
    if (!obs->trace_stream) {
      std::cerr << "cannot open trace file: " << opt.trace_out << "\n";
      return false;
    }
    if (opt.trace_format == "chrome") {
      obs->sink = std::make_unique<p3q::ChromeTraceSink>(&obs->trace_stream);
    } else {
      obs->sink = std::make_unique<p3q::JsonlTraceSink>(&obs->trace_stream);
    }
    obs->tracer = std::make_unique<p3q::Tracer>(obs->sink.get());
    if (opt.trace_mask != 0) obs->tracer->SetKindMask(opt.trace_mask);
    if (!opt.trace_nodes.empty()) {
      obs->tracer->SetNodeFilter(opt.trace_nodes);
    }
    if (opt.trace_ring > 0) {
      obs->tracer->SetRingCapacity(static_cast<std::size_t>(opt.trace_ring));
    }
  }
  if (!opt.profile_path.empty()) {
    obs->profiler = std::make_unique<p3q::PhaseProfiler>();
  }
  return true;
}

/// Normal-exit teardown: dumps the flight-recorder ring (ring mode) or
/// closes the sink framing (stream mode), and writes the profile JSON.
/// Returns false on I/O failure.
bool CloseObsSession(const Options& opt, ObsSession* obs) {
  if (obs->tracer != nullptr) {
    obs->tracer->DumpRing();  // no-op unless in ring mode
    obs->tracer->Finish();    // no-op in ring mode
    obs->trace_stream.flush();
    if (!obs->trace_stream) {
      std::cerr << "cannot write trace file: " << opt.trace_out << "\n";
      return false;
    }
    std::cout << "trace: " << opt.trace_out << " ("
              << obs->tracer->accepted() << " events)\n";
  }
  if (obs->profiler != nullptr) {
    std::ofstream out(opt.profile_path, std::ios::binary | std::ios::trunc);
    if (!(out << p3q::PhaseProfilerToJson(*obs->profiler))) {
      std::cerr << "cannot write profile file: " << opt.profile_path << "\n";
      return false;
    }
    std::cout << "profile: " << opt.profile_path << "\n";
  }
  return true;
}

/// Runs a named scenario timeline and prints/writes its report.
int RunScenarioMode(const Options& opt) {
  using namespace p3q;
  ScenarioRunnerOptions options = MakeRunnerOptions(opt);

  ObsSession obs;
  if (!OpenObsSession(opt, &obs)) return 1;
  options.tracer = obs.tracer.get();
  options.profiler = obs.profiler.get();

  const Scenario scenario = MakeScenario(opt.scenario);
  if (opt.arrival_rate.has_value()) {
    options.arrivals = OverrideArrivals(scenario, *opt.arrival_rate);
  }
  if (!opt.resume_path.empty()) {
    // The arrival override of the original run, read from the snapshot.
    options.arrivals = opt.resume_arrivals;
    std::cout << "resuming from: " << opt.resume_path << "\n";
  }
  std::cout << "scenario: " << scenario.name << " — " << scenario.description
            << "\nusers: " << opt.users << ", seed: " << opt.seed
            << ", cycle scale: " << opt.cycle_scale;
  if (options.arrivals.has_value()) {
    std::cout << ", arrivals: " << options.arrivals->Name();
  }
  if (opt.similarity != SimilarityMetric::kCommonActions) {
    std::cout << ", similarity: " << SimilarityMetricName(opt.similarity);
  }
  const LatencySpec effective_latency =
      opt.latency.value_or(scenario.latency);
  if (!effective_latency.IsZero()) {
    std::cout << ", latency: " << effective_latency.Name();
  }
  std::cout << "\n\n";
  ScenarioReport report;
  try {
    report = RunScenario(scenario, options);
  } catch (const CheckpointError& e) {
    std::cerr << "checkpoint error: " << e.what() << "\n";
    return 1;
  } catch (const std::invalid_argument& e) {
    std::cerr << "invalid configuration: " << e.what() << "\n";
    return 1;
  }

  TablePrinter table({"phase", "mode", "cycles", "online", "dep", "rejoin",
                      "queries", "recall", "coverage", "success", "MiB",
                      "cyc/s"});
  for (const PhaseReport& p : report.phases) {
    table.AddRow({p.name, p.mode, TablePrinter::Fmt(p.cycles),
                  TablePrinter::Fmt(p.online_at_end),
                  TablePrinter::Fmt(p.departures),
                  TablePrinter::Fmt(p.rejoins),
                  TablePrinter::Fmt(p.queries_issued),
                  TablePrinter::Fmt(p.avg_recall),
                  TablePrinter::Fmt(p.avg_coverage),
                  TablePrinter::Fmt(p.success_ratio),
                  TablePrinter::Fmt(
                      p.traffic.TotalBytes() / 1024.0 / 1024.0, 2),
                  TablePrinter::Fmt(p.timing.cycles_per_sec, 1)});
  }
  table.Print(std::cout);
  std::cout << "\ntotals: " << report.total_cycles << " cycles, "
            << report.total_queries_issued << " queries ("
            << report.total_queries_completed << " completed), "
            << report.total_departures << " departures, "
            << report.total_rejoins << " rejoins, "
            << report.total_traffic.TotalBytes() / 1024.0 / 1024.0
            << " MiB\nthroughput: "
            << TablePrinter::Fmt(report.total_timing.cycles_per_sec, 1)
            << " cycles/s, "
            << TablePrinter::Fmt(report.total_timing.user_cycles_per_sec, 1)
            << " user-cycles/s (wall "
            << TablePrinter::Fmt(report.total_timing.wall_seconds, 3)
            << " s)\n";
  if (!effective_latency.IsZero()) {
    const DeliveryStats& d = report.total_delivery;
    std::cout << "delivery: " << d.enqueued << " sent, " << d.delivered
              << " delivered, " << d.dropped << " dropped, "
              << d.stale_dropped << " stale, lag p50/p95 "
              << TablePrinter::Fmt(d.LagPercentile(0.50), 1) << "/"
              << TablePrinter::Fmt(d.LagPercentile(0.95), 1)
              << " cycles, peak in flight " << d.max_in_flight << "\n";
  }
  if (report.open_loop) {
    const QueryLatencyStats& q = report.total_query_latency;
    const PercentileValue p99 = q.CompletionPercentile(0.99);
    std::cout << "serving: " << q.issued << " issued, " << q.completed
              << " completed (" << q.completed_within_slo << " within SLO of "
              << report.slo_cycles << " cycles), " << q.abandoned
              << " abandoned; latency p50/p95/p99 "
              << TablePrinter::Fmt(q.CompletionPercentile(0.50).value, 1)
              << "/" << TablePrinter::Fmt(q.CompletionPercentile(0.95).value, 1)
              << "/" << TablePrinter::Fmt(p99.value, 1)
              << (p99.lower_bound ? "+" : "") << " cycles, first result p50 "
              << TablePrinter::Fmt(q.FirstResultPercentile(0.50).value, 1)
              << "\n";
  }
  if (opt.timing) {
    const MemoryReport& m = report.memory;
    std::cout << "memory: peak RSS " << TablePrinter::Fmt(m.peak_rss_mb, 1)
              << " MiB; arenas "
              << TablePrinter::Fmt(m.arena_used_bytes / 1024.0 / 1024.0, 1)
              << "/"
              << TablePrinter::Fmt(m.arena_reserved_bytes / 1024.0 / 1024.0, 1)
              << " MiB used/reserved in " << m.arena_slabs << " slabs ("
              << m.arena_live_blocks << " snapshots, "
              << m.arena_recycled_slabs << " recycled); pool "
              << m.pool_hits << " hits / " << m.pool_misses
              << " misses; pair cache " << m.pair_cache_entries
              << " entries, " << m.pair_cache_evictions << " evicted\n";
  }

  if (!opt.json_path.empty() &&
      !WriteScenarioReportJson(report, opt.json_path, opt.timing)) {
    std::cerr << "cannot write JSON report: " << opt.json_path << "\n";
    return 1;
  }
  if (!opt.csv_path.empty() &&
      !WriteScenarioReportCsv(report, opt.csv_path, opt.timing)) {
    std::cerr << "cannot write CSV report: " << opt.csv_path << "\n";
    return 1;
  }
  if (!opt.json_path.empty()) {
    std::cout << "JSON report: " << opt.json_path << "\n";
  }
  if (!opt.csv_path.empty()) {
    std::cout << "CSV report: " << opt.csv_path << "\n";
  }
  if (!CloseObsSession(opt, &obs)) return 1;
  return 0;
}

/// Runs the scenario once per --arrival-sweep rate and reports per-rate
/// latency percentiles and goodput (completions within the SLO per
/// timeline cycle). Everything printed/written is deterministic in
/// (scenario, options) — byte-identical for every --threads value.
int RunSweepMode(const Options& opt) {
  using namespace p3q;
  const Scenario scenario = MakeScenario(opt.scenario);
  const SweepSpec sweep = *opt.arrival_sweep;

  const auto num = [](double v, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return std::string(buf);
  };

  std::cout << "scenario: " << scenario.name << " — saturation sweep, rate "
            << num(sweep.lo, 2) << " to " << num(sweep.hi, 2) << " step "
            << num(sweep.step, 2) << "\nusers: " << opt.users
            << ", seed: " << opt.seed << "\n\n";

  TablePrinter table({"rate", "issued", "completed", "in_slo", "abandoned",
                      "p50", "p95", "p99", "goodput/cyc"});
  std::ostringstream json;
  std::ostringstream csv;
  json << "{\n  \"scenario\": \"" << scenario.name
       << "\",\n  \"seed\": " << opt.seed << ",\n  \"users\": " << opt.users
       << ",\n  \"sweep\": [\n";
  csv << "rate,issued,completed,completed_within_slo,abandoned,p50,p95,p99,"
         "p99_lower_bound,first_result_p50,goodput_per_cycle\n";

  bool first = true;
  for (double rate = sweep.lo; rate <= sweep.hi + 1e-9; rate += sweep.step) {
    ScenarioRunnerOptions options = MakeRunnerOptions(opt);
    options.arrivals = OverrideArrivals(scenario, rate);
    ScenarioReport report;
    try {
      report = RunScenario(scenario, options);
    } catch (const std::invalid_argument& e) {
      std::cerr << "invalid configuration: " << e.what() << "\n";
      return 1;
    }
    const QueryLatencyStats& q = report.total_query_latency;
    const PercentileValue p50 = q.CompletionPercentile(0.50);
    const PercentileValue p95 = q.CompletionPercentile(0.95);
    const PercentileValue p99 = q.CompletionPercentile(0.99);
    const PercentileValue fr50 = q.FirstResultPercentile(0.50);
    const double goodput =
        report.total_cycles == 0
            ? 0.0
            : static_cast<double>(q.completed_within_slo) /
                  static_cast<double>(report.total_cycles);

    table.AddRow({num(rate, 2), TablePrinter::Fmt(q.issued),
                  TablePrinter::Fmt(q.completed),
                  TablePrinter::Fmt(q.completed_within_slo),
                  TablePrinter::Fmt(q.abandoned),
                  num(p50.value, 1), num(p95.value, 1),
                  num(p99.value, 1) + (p99.lower_bound ? "+" : ""),
                  num(goodput, 3)});

    json << (first ? "" : ",\n") << "    {\"rate\": " << num(rate, 2)
         << ", \"issued\": " << q.issued << ", \"completed\": " << q.completed
         << ", \"completed_within_slo\": " << q.completed_within_slo
         << ", \"abandoned\": " << q.abandoned
         << ", \"p50\": " << num(p50.value, 2)
         << ", \"p95\": " << num(p95.value, 2)
         << ", \"p99\": " << num(p99.value, 2);
    if (p99.lower_bound) json << ", \"p99_lower_bound\": true";
    json << ", \"first_result_p50\": " << num(fr50.value, 2)
         << ", \"goodput_per_cycle\": " << num(goodput, 4) << "}";
    csv << num(rate, 2) << "," << q.issued << "," << q.completed << ","
        << q.completed_within_slo << "," << q.abandoned << ","
        << num(p50.value, 2) << "," << num(p95.value, 2) << ","
        << num(p99.value, 2) << "," << (p99.lower_bound ? 1 : 0) << ","
        << num(fr50.value, 2) << "," << num(goodput, 4) << "\n";
    first = false;
  }
  json << "\n  ]\n}\n";
  table.Print(std::cout);

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path, std::ios::binary | std::ios::trunc);
    if (!(out << json.str())) {
      std::cerr << "cannot write JSON report: " << opt.json_path << "\n";
      return 1;
    }
    std::cout << "\nJSON report: " << opt.json_path << "\n";
  }
  if (!opt.csv_path.empty()) {
    std::ofstream out(opt.csv_path, std::ios::binary | std::ios::trunc);
    if (!(out << csv.str())) {
      std::cerr << "cannot write CSV report: " << opt.csv_path << "\n";
      return 1;
    }
    std::cout << "CSV report: " << opt.csv_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Options> parsed = ParseArgs(argc, argv);
  if (!parsed) {
    PrintUsage();
    return 1;
  }
  Options opt = *parsed;
  if (opt.help) {
    PrintUsage();
    return 0;
  }
  if (!opt.simd.empty()) {
    const p3q::SimdResolution res = p3q::ResolveSimdLane(opt.simd);
    if (!res.warning.empty()) {
      std::cerr << "p3q_sim: " << res.warning << "\n";
    }
    p3q::SetSimdLane(res.lane);
  }
  if (opt.list_scenarios) {
    for (const std::string& name : p3q::RegisteredScenarioNames()) {
      std::cout << name << "\t" << p3q::ScenarioDescription(name) << "\n";
    }
    return 0;
  }
  if (!opt.resume_path.empty()) {
    // Reconstruct the original run from the snapshot's identity header; the
    // runner re-verifies every field against the payload it restores.
    try {
      const p3q::CheckpointRunInfo info =
          p3q::ReadScenarioCheckpointInfo(opt.resume_path);
      if (!p3q::HasScenario(info.scenario)) {
        std::cerr << "cannot resume: checkpoint names unknown scenario '"
                  << info.scenario << "' (see --list-scenarios)\n";
        return 1;
      }
      opt.scenario = info.scenario;
      opt.users = info.users;
      opt.seed = info.seed;
      opt.cycle_scale = info.cycle_scale;
      opt.network_size = info.network_size;
      opt.stored = info.stored_profiles;
      opt.alpha = info.alpha;
      opt.top_k = info.top_k;
      opt.similarity = info.similarity;
      opt.latency = info.latency;
      opt.resume_arrivals = info.arrivals;
    } catch (const p3q::CheckpointError& e) {
      std::cerr << "cannot resume: " << e.what() << "\n";
      return 1;
    }
    return RunScenarioMode(opt);
  }
  if (!opt.scenario.empty()) {
    return opt.arrival_sweep.has_value() ? RunSweepMode(opt)
                                         : RunScenarioMode(opt);
  }

  using namespace p3q;

  // --- dataset ---
  std::optional<SyntheticTrace> synthetic;
  Dataset file_dataset;
  if (!opt.trace_path.empty()) {
    auto loaded = LoadTaggingTraceFile(opt.trace_path);
    if (!loaded) {
      std::cerr << "cannot load trace: " << opt.trace_path << "\n";
      return 1;
    }
    file_dataset = std::move(loaded->dataset);
    std::cout << "loaded trace: " << loaded->user_names.size() << " users ("
              << loaded->skipped_lines << " lines skipped)\n";
  } else {
    synthetic = GenerateSyntheticTrace(
        SyntheticConfig::DeliciousLike(opt.users), opt.seed);
  }
  // Borrow, never copy: the trace keeps sole ownership of the action
  // list. (The scenario mode goes further and streams the trace straight
  // into the profile store without materializing a Dataset at all.)
  const Dataset& dataset =
      synthetic ? synthetic->dataset() : file_dataset;
  const DatasetStats stats = dataset.ComputeStats();
  std::cout << "dataset: " << stats.num_users << " users, " << stats.num_items
            << " items, " << stats.num_tags << " tags, " << stats.num_actions
            << " actions\n";
  if (opt.network_size <= 0) {
    opt.network_size = std::max(10, static_cast<int>(stats.num_users) / 10);
  }

  // --- system ---
  P3QConfig config;
  config.network_size = opt.network_size;
  config.stored_profiles = std::min(opt.stored, opt.network_size);
  config.alpha = opt.alpha;
  config.top_k = opt.top_k;
  config.similarity = opt.similarity;
  if (const std::string error = config.Validate(); !error.empty()) {
    std::cerr << "invalid configuration: " << error << "\n";
    return 1;
  }
  std::vector<int> per_user_c;
  Rng rng(opt.seed + 7);
  if (opt.lambda > 0) {
    const StorageDistribution dist = StorageDistribution::TruncatedPoisson(
        opt.lambda, opt.network_size / 1000.0);
    per_user_c = dist.AssignAll(stats.num_users, &rng);
    std::cout << "storage: truncated Poisson(" << opt.lambda
              << "), mean c = " << dist.Mean() << "\n";
  } else {
    std::cout << "storage: uniform c = " << config.stored_profiles << "\n";
  }
  P3QSystem system(dataset, config, per_user_c, opt.seed);
  if (config.similarity != SimilarityMetric::kCommonActions) {
    std::cout << "similarity: " << SimilarityMetricName(config.similarity)
              << "\n";
  }
  if (opt.threads > 0) system.SetThreads(opt.threads);
  if (opt.latency.has_value()) {
    system.SetLatency(*opt.latency);
    std::cout << "latency model: " << opt.latency->Name() << "\n";
  }
  ObsSession obs;
  if (!OpenObsSession(opt, &obs)) return 1;
  if (obs.tracer != nullptr) system.SetTracer(obs.tracer.get());
  if (obs.profiler != nullptr) system.SetProfiler(obs.profiler.get());
  system.BootstrapRandomViews();

  // --- lazy convergence ---
  const IdealNetworks ideal =
      ComputeIdealNetworks(dataset, opt.network_size, opt.similarity);
  if (opt.converge > 0) {
    // Run cycle by cycle until the success ratio crosses the target; the
    // crossing cycle is the CI perf trajectory's convergence metric (it is
    // deterministic in (users, seed, latency), so a baseline can gate it).
    long converged_at = -1;
    double ratio = 0;
    for (int cycle = 1; cycle <= opt.lazy_cycles; ++cycle) {
      system.RunLazyCycles(1);
      ratio = AverageSuccessRatio(system, ideal);
      if (ratio >= opt.converge) {
        converged_at = cycle;
        break;
      }
    }
    std::cout << "cycles_to_convergence: " << converged_at
              << "\nconvergence_success_ratio: " << ratio
              << "\nconvergence_target: " << opt.converge << "\n";
  } else {
    system.RunLazyCycles(static_cast<std::uint64_t>(opt.lazy_cycles));
    std::cout << "after " << opt.lazy_cycles << " lazy cycles: success ratio "
              << AverageSuccessRatio(system, ideal) << ", maintenance traffic "
              << system.metrics().TotalBytes() / 1024.0 / 1024.0 << " MiB\n";
  }

  // --- dynamism ---
  if (opt.apply_updates && synthetic) {
    const UpdateBatch batch = synthetic->MakeUpdateBatch(UpdateConfig{}, &rng);
    system.ApplyUpdateBatch(batch);
    std::cout << "applied update batch: " << batch.NumChangedUsers()
              << " users changed, AUR "
              << AverageUpdateRate(system, ChangedUsers(batch)) << "\n";
  }
  if (opt.departure > 0) {
    const auto left = system.FailRandomFraction(opt.departure);
    std::cout << "departure: " << left.size() << " users left, "
              << system.network().NumOnline() << " online\n";
  }

  // --- queries ---
  const Metrics before = system.metrics().Snapshot();
  double recall_sum = 0, reach_sum = 0, cycles_sum = 0;
  int ran = 0, completed = 0;
  for (int i = 0; i < opt.queries; ++i) {
    const UserId querier = static_cast<UserId>(rng.NextUint64(stats.num_users));
    if (!system.network().IsOnline(querier)) continue;
    const QuerySpec spec = GenerateQueryForUser(dataset, querier, &rng);
    if (spec.tags.empty()) continue;
    const std::vector<ItemId> reference =
        ReferenceTopK(system, spec, config.top_k);
    const std::uint64_t qid = system.IssueQuery(spec);
    system.RunEagerCycles(static_cast<std::uint64_t>(opt.eager_cycles));
    const ActiveQuery& q = system.query(qid);
    recall_sum += RecallAtK(q.CurrentTopKItems(), reference);
    reach_sum += static_cast<double>(system.QueryReached(qid).size());
    if (system.QueryComplete(qid)) {
      ++completed;
      cycles_sum += static_cast<double>(q.history().size()) - 1;
    }
    ++ran;
    system.ForgetQuery(qid);
  }
  const Metrics eager = system.metrics().Since(before);

  TablePrinter summary({"metric", "value"});
  summary.AddRow({"queries run", TablePrinter::Fmt(ran)});
  summary.AddRow({"avg recall@k",
                  TablePrinter::Fmt(ran ? recall_sum / ran : 0)});
  summary.AddRow({"completed", TablePrinter::Fmt(completed)});
  summary.AddRow({"avg cycles to complete",
                  TablePrinter::Fmt(completed ? cycles_sum / completed : -1, 1)});
  summary.AddRow({"avg users reached",
                  TablePrinter::Fmt(ran ? reach_sum / ran : 0, 1)});
  summary.AddRow({"eager traffic (MiB)",
                  TablePrinter::Fmt(eager.TotalBytes() / 1024.0 / 1024.0, 2)});
  summary.AddRow(
      {"eager messages", TablePrinter::Fmt(eager.TotalMessages())});
  std::cout << "\n";
  summary.Print(std::cout);
  if (!CloseObsSession(opt, &obs)) return 1;
  return 0;
}
