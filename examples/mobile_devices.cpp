// Heterogeneous devices: the paper's λ=1 population models mobile phones
// with tiny storage, λ=4 a desktop-rich crowd. P3Q lets every user trade
// storage for latency and bandwidth individually; this example puts both
// populations side by side.
#include <iostream>

#include "common/table_printer.h"
#include "dataset/storage_dist.h"
#include "eval/experiment.h"
#include "eval/metrics_eval.h"

int main() {
  const int num_users = 800;
  const int network_size = 80;
  const p3q::ExperimentEnv env(num_users, network_size, 123);

  p3q::TablePrinter table({"population", "mean c", "avg storage (actions)",
                           "avg cycles to exact answer", "avg KB per query",
                           "avg users reached"});
  for (double lambda : {1.0, 4.0}) {
    p3q::Rng rng(static_cast<std::uint64_t>(lambda));
    const p3q::StorageDistribution dist =
        p3q::StorageDistribution::TruncatedPoisson(lambda,
                                                   network_size / 1000.0);
    p3q::P3QConfig config;
    auto system = env.MakeSeededSystem(
        config, dist.AssignAll(static_cast<std::size_t>(num_users), &rng));

    double storage = 0;
    for (p3q::UserId u = 0; u < static_cast<p3q::UserId>(num_users); ++u) {
      storage += static_cast<double>(p3q::StoredProfileLength(*system, u));
    }

    const auto stats =
        p3q::RunQueryBatch(system.get(), env.SampleQueries(60), 30);
    double cycles = 0, bytes = 0, reached = 0;
    int completed = 0;
    for (const auto& s : stats) {
      bytes += static_cast<double>(s.partial_result_bytes +
                                   s.forwarded_list_bytes +
                                   s.returned_list_bytes);
      reached += static_cast<double>(s.users_reached);
      if (s.complete) {
        cycles += s.cycles_to_complete;
        ++completed;
      }
    }
    table.AddRow({lambda == 1.0 ? "mobile-heavy (lambda=1)"
                                : "desktop-rich (lambda=4)",
                  p3q::TablePrinter::Fmt(dist.Mean(), 1),
                  p3q::TablePrinter::Fmt(storage / num_users, 0),
                  p3q::TablePrinter::Fmt(completed ? cycles / completed : -1, 1),
                  p3q::TablePrinter::Fmt(bytes / stats.size() / 1024.0, 1),
                  p3q::TablePrinter::Fmt(reached / stats.size(), 1)});
  }
  table.Print(std::cout);
  std::cout << "\nWeak devices store little and compensate with more gossip "
               "(more users\nreached, more traffic); rich devices answer "
               "faster from local replicas.\nEach user picks her own point "
               "on this tradeoff — that is P3Q's knob c.\n";
  return 0;
}
