// Personalized search: the paper's motivating scenario ("matrix" means
// different things to a mathematician and a movie fan). Two users from
// different interest communities issue a query with the same tags; P3Q
// ranks through each querier's implicit social network, so the same tags
// yield different top-k lists — and both beat the global, non-personalized
// ranking at predicting what the querier herself would tag.
#include <algorithm>
#include <iostream>
#include <unordered_map>

#include "baseline/centralized_topk.h"
#include "baseline/ideal_network.h"
#include "core/p3q_system.h"
#include "dataset/generator.h"
#include "eval/recall.h"

namespace {

/// Global ranking: score items over *all* profiles (what a centralized,
/// non-personalized engine would return).
std::vector<p3q::ItemId> GlobalTopK(const p3q::ProfileStore& store,
                                    const std::vector<p3q::TagId>& tags,
                                    int k) {
  std::vector<p3q::ProfilePtr> all;
  for (p3q::UserId u = 0; u < static_cast<p3q::UserId>(store.NumUsers()); ++u) {
    all.push_back(store.Get(u));
  }
  std::vector<p3q::ItemId> items;
  for (const auto& [item, score] : p3q::CentralizedTopK(all, tags, k)) {
    items.push_back(item);
  }
  return items;
}

/// How well a ranking matches the querier's own tagging behaviour: the
/// fraction of returned items the user has tagged herself.
double SelfRelevance(const p3q::Profile& profile,
                     const std::vector<p3q::ItemId>& items) {
  if (items.empty()) return 0;
  std::size_t hits = 0;
  for (p3q::ItemId item : items) {
    if (profile.ContainsItem(item)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(items.size());
}

}  // namespace

int main() {
  const int num_users = 600;
  const p3q::SyntheticTrace trace = p3q::GenerateSyntheticTrace(
      p3q::SyntheticConfig::DeliciousLike(num_users), 2024);

  p3q::P3QConfig config;
  config.network_size = 60;
  config.stored_profiles = 15;
  p3q::P3QSystem system(trace.dataset(), config, {}, 7);
  system.BootstrapRandomViews();
  system.SeedNetworks(
      p3q::ComputeIdealNetworks(trace.dataset(), config.network_size));

  // Find two users from different communities who share at least one tag in
  // their vocabularies, and a tag both have used.
  const auto& community = trace.user_community();
  p3q::UserId alice = p3q::kInvalidUser, bob = p3q::kInvalidUser;
  std::vector<p3q::TagId> shared_tags;
  for (p3q::UserId a = 0; a < num_users && alice == p3q::kInvalidUser; ++a) {
    for (p3q::UserId b = a + 1; b < num_users; ++b) {
      if (community[a] == community[b]) continue;
      std::unordered_map<p3q::TagId, int> tags;
      for (p3q::ActionKey k : trace.dataset().ActionsOf(a)) {
        tags[p3q::ActionTag(k)] |= 1;
      }
      for (p3q::ActionKey k : trace.dataset().ActionsOf(b)) {
        tags[p3q::ActionTag(k)] |= 2;
      }
      shared_tags.clear();
      for (const auto& [tag, mask] : tags) {
        if (mask == 3) shared_tags.push_back(tag);
      }
      if (shared_tags.size() >= 2) {
        alice = a;
        bob = b;
        break;
      }
    }
  }
  if (alice == p3q::kInvalidUser) {
    std::cerr << "no ambiguous tag pair found (unexpected)\n";
    return 1;
  }
  std::sort(shared_tags.begin(), shared_tags.end());
  shared_tags.resize(2);
  std::cout << "users " << alice << " (community " << community[alice]
            << ") and " << bob << " (community " << community[bob]
            << ") both search tags {" << shared_tags[0] << ", "
            << shared_tags[1] << "}\n\n";

  const std::vector<p3q::ItemId> global =
      GlobalTopK(system.profile_store(), shared_tags, config.top_k);

  for (p3q::UserId querier : {alice, bob}) {
    p3q::QuerySpec spec;
    spec.querier = querier;
    spec.tags = shared_tags;
    const std::uint64_t qid = system.IssueQuery(spec);
    system.RunEagerCycles(12);
    const std::vector<p3q::ItemId> personalized =
        system.query(qid).CurrentTopKItems();

    const p3q::Profile& me = *system.profile_store().Get(querier);
    std::cout << "user " << querier << ":\n  personalized top-k:";
    for (p3q::ItemId i : personalized) std::cout << " " << i;
    std::cout << "\n  self-relevance personalized "
              << SelfRelevance(me, personalized) << " vs global "
              << SelfRelevance(me, global) << "\n";
  }

  // The two personalized rankings should differ substantially.
  const std::uint64_t q1 = system.IssueQuery({alice, shared_tags, 0});
  const std::uint64_t q2 = system.IssueQuery({bob, shared_tags, 0});
  system.RunEagerCycles(12);
  const double overlap = p3q::RecallAtK(system.query(q1).CurrentTopKItems(),
                                        system.query(q2).CurrentTopKItems());
  std::cout << "\noverlap between the two personalized top-k lists: "
            << overlap << " (same tags, different acquaintances)\n";
  return 0;
}
