// Analytical model explorer (Section 2.4): prints R(α) — the number of
// eager cycles until the querier holds the exact personalized result — for
// a grid of α and remaining-list lengths, plus the Theorem 2.3/2.4 bounds.
//
//   ./analysis_explorer [L] [X]
#include <cstdlib>
#include <iostream>

#include "common/table_printer.h"
#include "core/analysis.h"

int main(int argc, char** argv) {
  const double L = argc > 1 ? std::atof(argv[1]) : 990.0;  // paper: s-c=990
  const double X = argc > 2 ? std::atof(argv[2]) : 10.0;

  std::cout << "remaining list L=" << L << ", profiles found per gossip X="
            << X << "\n\n";
  p3q::TablePrinter table({"alpha", "R(alpha) cycles", "discrete recursion",
                           "users bound 2^R", "messages bound 2(2^R-1)"});
  for (double alpha :
       {0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0}) {
    const double r = p3q::QueryCompletionCycles(alpha, L, X);
    table.AddRow({p3q::TablePrinter::Fmt(alpha, 2),
                  p3q::TablePrinter::Fmt(r, 2),
                  p3q::TablePrinter::Fmt(
                      p3q::SimulateCompletionCycles(alpha, L, X)),
                  p3q::TablePrinter::Fmt(p3q::MaxUsersInvolved(r), 1),
                  p3q::TablePrinter::Fmt(p3q::MaxEagerMessages(r), 1)});
  }
  table.Print(std::cout);

  std::cout << "\nThe optimum is alpha=" << p3q::OptimalAlpha()
            << " (Theorem 2.2): R(0.5)=" << std::fixed
            << p3q::QueryCompletionCycles(0.5, L, X)
            << " cycles ~ log2(L/X+1)+1.\n"
            << "At 5 s per eager cycle the paper's setting answers in ~"
            << p3q::QueryCompletionCycles(0.5, 990, 100) * 5.0
            << " s once networks are warm.\n";

  std::cout << "\nHow R scales with the personal network (alpha=0.5, X=" << X
            << "):\n";
  p3q::TablePrinter growth({"L", "R(0.5)"});
  for (double l : {10.0, 100.0, 1000.0, 10000.0, 100000.0}) {
    growth.AddRow({p3q::TablePrinter::Fmt(l, 0),
                   p3q::TablePrinter::Fmt(
                       p3q::QueryCompletionCycles(0.5, l, X), 2)});
  }
  growth.Print(std::cout);
  std::cout << "\nLogarithmic growth is why P3Q scales: ten times the "
               "neighbours costs ~3 extra cycles.\n";
  return 0;
}
