// Churn resilience (Section 3.4.2): half the population leaves at once;
// queries from survivors keep working because each profile lives on as
// replicas in other users' personal networks.
#include <iostream>

#include "baseline/centralized_topk.h"
#include "baseline/ideal_network.h"
#include "core/p3q_system.h"
#include "dataset/generator.h"
#include "dataset/query_gen.h"
#include "eval/recall.h"

int main() {
  const int num_users = 600;
  const p3q::SyntheticTrace trace = p3q::GenerateSyntheticTrace(
      p3q::SyntheticConfig::DeliciousLike(num_users), 99);

  p3q::P3QConfig config;
  config.network_size = 60;
  config.stored_profiles = 12;
  p3q::P3QSystem system(trace.dataset(), config, {}, 3);
  system.BootstrapRandomViews();
  system.SeedNetworks(
      p3q::ComputeIdealNetworks(trace.dataset(), config.network_size));

  std::cout << "population: " << system.network().NumOnline()
            << " users online\n";
  const auto departed = system.FailRandomFraction(0.5);
  std::cout << "massive departure: " << departed.size()
            << " users left simultaneously, "
            << system.network().NumOnline() << " remain\n\n";

  p3q::Rng rng(17);
  double recall_sum = 0;
  int queries = 0, complete = 0;
  std::size_t offline_profiles_served = 0;
  for (int i = 0; i < 30; ++i) {
    const auto querier =
        static_cast<p3q::UserId>(rng.NextUint64(num_users));
    if (!system.network().IsOnline(querier)) continue;
    const p3q::QuerySpec spec =
        p3q::GenerateQueryForUser(trace.dataset(), querier, &rng);
    if (spec.tags.empty()) continue;
    const std::vector<p3q::ItemId> reference =
        p3q::ReferenceTopK(system, spec, config.top_k);
    const std::uint64_t qid = system.IssueQuery(spec);
    system.RunEagerCycles(10);

    const p3q::ActiveQuery& q = system.query(qid);
    recall_sum += p3q::RecallAtK(q.CurrentTopKItems(), reference);
    ++queries;
    if (system.QueryComplete(qid)) ++complete;
    // How many of the used profiles belong to users who are gone? Those
    // answers were served purely from replicas.
    for (p3q::UserId u : q.used_profiles()) {
      if (!system.network().IsOnline(u)) ++offline_profiles_served;
    }
    system.ForgetQuery(qid);
  }
  std::cout << "queries issued by survivors: " << queries << "\n"
            << "average recall after 10 cycles: " << recall_sum / queries
            << " (paper: ~10% quality loss at p=50%)\n"
            << "queries fully completed: " << complete << "/" << queries
            << "\n"
            << "departed users' profiles served from replicas: "
            << offline_profiles_served << "\n";
  return 0;
}
