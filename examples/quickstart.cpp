// Quickstart: build a small tagging community, let P3Q discover the implicit
// social network by gossip, then watch a personalized top-k query refine
// itself cycle by cycle.
//
//   ./quickstart [num_users]
#include <cstdlib>
#include <iostream>

#include "baseline/centralized_topk.h"
#include "baseline/ideal_network.h"
#include "core/p3q_system.h"
#include "dataset/generator.h"
#include "dataset/query_gen.h"
#include "eval/metrics_eval.h"
#include "eval/recall.h"

int main(int argc, char** argv) {
  const int num_users = argc > 1 ? std::atoi(argv[1]) : 400;
  if (num_users < 1) {
    std::cerr << "usage: quickstart [num_users>=1]\n";
    return 1;
  }
  const std::uint64_t seed = 42;

  // 1. A delicious-like tagging trace: users in interest communities, Zipf
  //    item/tag popularity, log-normal activity.
  const p3q::SyntheticTrace trace = p3q::GenerateSyntheticTrace(
      p3q::SyntheticConfig::DeliciousLike(num_users), seed);
  const p3q::DatasetStats stats = trace.dataset().ComputeStats();
  std::cout << "dataset: " << stats.num_users << " users, " << stats.num_items
            << " items, " << stats.num_tags << " tags, " << stats.num_actions
            << " tagging actions\n";

  // 2. A P3Q deployment: personal networks of s=40 neighbours, c=10 stored
  //    profiles, random views of 10 peers.
  p3q::P3QConfig config;
  config.network_size = 40;
  config.stored_profiles = 10;
  p3q::P3QSystem system(trace.dataset(), config, /*per_user_storage=*/{}, seed);
  system.BootstrapRandomViews();

  // 3. Lazy mode: gossip until the personal networks approach the ideal
  //    (computed offline as ground truth for the demo).
  const p3q::IdealNetworks ideal =
      p3q::ComputeIdealNetworks(trace.dataset(), config.network_size);
  for (int round = 0; round < 6; ++round) {
    system.RunLazyCycles(10);
    std::cout << "after " << (round + 1) * 10 << " lazy cycles: success ratio "
              << p3q::AverageSuccessRatio(system, ideal) << "\n";
  }

  // 4. Eager mode: one user queries with the tags of a random item of hers.
  p3q::Rng rng(seed);
  const p3q::UserId querier = 7;
  const p3q::QuerySpec query =
      p3q::GenerateQueryForUser(trace.dataset(), querier, &rng);
  std::cout << "\nuser " << querier << " queries with " << query.tags.size()
            << " tags\n";
  const std::vector<p3q::ItemId> reference =
      p3q::ReferenceTopK(system, query, config.top_k);

  const std::uint64_t qid = system.IssueQuery(query);
  for (int cycle = 1; cycle <= 10 && !system.QueryComplete(qid); ++cycle) {
    system.RunEagerCycles(1);
  }
  const p3q::ActiveQuery& active = system.query(qid);
  std::cout << "cycle-by-cycle refinement (recall vs centralized reference):\n";
  for (std::size_t cycle = 0; cycle < active.history().size(); ++cycle) {
    std::vector<p3q::ItemId> items;
    for (const p3q::RankedItem& r : active.history()[cycle].top_k) {
      items.push_back(r.item);
    }
    std::cout << "  cycle " << cycle << ": recall "
              << p3q::RecallAtK(items, reference) << "  ("
              << active.history()[cycle].used_profiles << "/"
              << active.expected_profiles() << " profiles used"
              << (active.history()[cycle].complete ? ", complete" : "")
              << ")\n";
  }

  std::cout << "\nfinal top-" << config.top_k << ":\n";
  for (const p3q::RankedItem& r : active.history().back().top_k) {
    std::cout << "  item " << r.item << "  score " << r.worst << "\n";
  }
  std::cout << "query gossip reached " << system.QueryReached(qid).size()
            << " users; traffic "
            << active.traffic().TotalBytes() / 1024.0 << " KiB\n";
  return 0;
}
