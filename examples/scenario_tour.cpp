// scenario_tour — runs every registered scenario at small scale.
//
// A guided tour of the scenario engine: each built-in timeline (steady
// state, massive departure, diurnal availability, flash crowd, update storm,
// churn grind, cold start, mixed stress) runs on a small synthetic
// population and prints a one-line outcome summary. Usage:
//
//   scenario_tour [users]      (default 120)
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>

#include "scenario/registry.h"
#include "scenario/runner.h"

int main(int argc, char** argv) {
  int users = 120;
  if (argc > 1) {
    users = std::atoi(argv[1]);
    if (users < 1) {
      std::cerr << "usage: scenario_tour [users>=1]\n";
      return 1;
    }
  }

  using namespace p3q;
  ScenarioRunnerOptions options;
  options.users = users;
  options.seed = 42;
  options.cycle_scale = 0.3;  // compressed timelines: the tour stays quick

  std::cout << "P3Q scenario tour — " << users
            << " users per scenario, cycle scale " << options.cycle_scale
            << "\n\n";
  for (const std::string& name : RegisteredScenarioNames()) {
    const ScenarioReport report = RunScenario(MakeScenario(name), options);
    const PhaseReport& last = report.phases.back();
    std::cout << std::left << std::setw(18) << name << " "
              << report.total_cycles << " cycles, " << std::setw(3)
              << report.total_queries_issued << " queries, recall "
              << std::fixed << std::setprecision(3) << last.avg_recall
              << ", success " << last.success_ratio << ", "
              << report.total_departures << " dep / " << report.total_rejoins
              << " rejoins, " << std::setprecision(2)
              << report.total_traffic.TotalBytes() / 1024.0 / 1024.0
              << " MiB, " << std::setprecision(0)
              << report.total_timing.cycles_per_sec << " cyc/s\n";
  }
  std::cout << "\nRun `p3q_sim --scenario=NAME --json=out.json` for the full "
               "per-phase report.\n";
  return 0;
}
